"""The snooping protocol engine and whole-system simulator.

:class:`System` wires cores, private caches, the shared bus, the arbiter
and the LLC/DRAM together and implements the coherence protocol of
Section III:

* Every miss becomes a :class:`~repro.sim.messages.CoherenceRequest` that
  is broadcast on the bus, waits until every conflicting copy has been
  released — at each remote core's countdown-counter expiry for timed
  cores, immediately for MSI cores (``θ = -1``) — and then receives its
  data in a bus data-transfer slot granted by the arbiter.
* A single-writer/multiple-reader invariant is maintained at every cycle
  and optionally checked by a golden-value oracle (``check_coherence``),
  which the test-suite uses to validate the protocol under random traces.
* The PCC baseline's behaviour (dirty cache-to-cache transfers routed
  through the LLC) is selected by ``config.via_llc_transfers``.

The engine is event-driven but cycle-accurate: all activity happens at
integer cycles, ordered by the phases of :mod:`repro.sim.kernel`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.params import MemOp, SimConfig
from repro.sim.arbiter import Arbiter, build_arbiter
from repro.sim.bus import SharedBus
from repro.sim.cache import CacheLine, LineState
from repro.sim.core import Core
from repro.sim.dram import FixedLatencyDRAM
from repro.sim.kernel import (
    PHASE_ARBITRATE,
    PHASE_CORE,
    PHASE_EFFECT,
    EventKernel,
)
from repro.sim.llc import SharedLLC
from repro.sim.messages import (
    LLC_SOURCE,
    BusJob,
    CoherenceRequest,
    JobKind,
    ReqKind,
    ReqState,
    Writeback,
)
from repro.sim.private_cache import AccessOutcome, PrivateCache
from repro.sim.stats import CoreStats, SystemStats
from repro.sim.trace import Trace


class CoherenceViolationError(RuntimeError):
    """The golden-value oracle observed a protocol violation."""


class System:
    """One simulated multi-core system executing a set of traces."""

    PHASE_EFFECT = PHASE_EFFECT
    PHASE_CORE = PHASE_CORE
    PHASE_ARBITRATE = PHASE_ARBITRATE

    def __init__(
        self,
        config: SimConfig,
        traces: Sequence[Trace],
        record_latencies: bool = False,
        fast_path: bool = True,
    ) -> None:
        """``fast_path=False`` disables inline hit batching (one heap
        event per access, the seed engine's behaviour); results are
        cycle-identical either way — the flag exists so the regression
        suite can assert exactly that."""
        if len(traces) != config.num_cores:
            raise ValueError(
                f"{config.num_cores} cores but {len(traces)} traces supplied"
            )
        self.config = config
        self.kernel = EventKernel()
        self.bus = SharedBus()
        self.arbiter: Arbiter = build_arbiter(config)
        self.dram = FixedLatencyDRAM(config.dram_latency)
        self.llc = SharedLLC(config.llc, config.perfect_llc, self.dram)
        self.caches: List[PrivateCache] = [
            PrivateCache(i, config.l1, config.core_config(i).theta)
            for i in range(config.num_cores)
        ]
        lat = config.latencies
        self.cores: List[Core] = [
            Core(
                core_id=i,
                trace=traces[i],
                system=self,
                line_bytes=config.l1.line_bytes,
                hit_latency=lat.hit,
                runahead_window=config.runahead_window,
                fast_path=fast_path,
            )
            for i in range(config.num_cores)
        ]
        self.stats = SystemStats(
            cores=[
                CoreStats(
                    core_id=i,
                    request_latencies=[] if record_latencies else None,
                )
                for i in range(config.num_cores)
            ]
        )
        # Hot-path shortcuts (avoid per-access attribute chains).
        self._core_stats: List[CoreStats] = self.stats.cores
        self._hit_latency = lat.hit
        self._check = config.check_coherence

        #: Observers called as ``listener(cycle, event, payload)`` on every
        #: protocol event (see :mod:`repro.sim.debug`).  Empty by default;
        #: events are only materialised when at least one listener exists.
        self.listeners: List = []
        self._requests: Dict[int, CoherenceRequest] = {}
        self._line_reqs: Dict[int, List[CoherenceRequest]] = {}
        self._wbs: Dict[int, Writeback] = {}
        self._wb_inflight: Set[int] = set()
        self._dram_fetches: Set[int] = set()
        self._golden: Dict[int, int] = {}
        self._seq = 0
        self._transfer_source: Optional[Tuple[int, int]] = None
        #: Line address of the in-flight data transfer (any source); the
        #: LLC must not evict it mid-transfer (non-perfect mode).
        self._transfer_line: Optional[int] = None
        self._arb_scheduled_at: Optional[int] = None
        self._done_count = 0
        self._started = False

    def _emit(self, event: str, **payload) -> None:
        if not self.listeners:
            return
        cycle = self.kernel.now
        for listener in self.listeners:
            listener(cycle, event, payload)

    # ------------------------------------------------------------------ run

    def run(self) -> SystemStats:
        """Execute all traces to completion; returns the collected stats."""
        if self._started:
            raise RuntimeError("a System can only be run once")
        self._started = True
        for core in self.cores:
            core.start()
        self.kernel.run(
            self.config.max_cycles,
            until=lambda: self._done_count >= len(self.cores),
        )
        self.stats.final_cycle = self.kernel.now
        if self._requests:
            raise RuntimeError(
                f"simulation finished with outstanding requests: "
                f"{list(self._requests.values())}"
            )
        return self.stats

    # -------------------------------------------------------- core callbacks

    def try_access(
        self, core_id: int, op: int, line_addr: int, runahead: bool
    ) -> bool:
        """Attempt a local access; True on hit (performed), False on miss.

        Run-ahead probes never create coherence requests: the core model
        allows only one outstanding miss.  ``op`` is a plain int
        (:class:`MemOp` value); the hit path is inlined — it is the
        single hottest function of the simulator.
        """
        array = self.caches[core_id].array
        line = array._lines[line_addr & array._set_mask]
        state = line.state
        if (
            state
            and line.line_addr == line_addr
            and not (line.handover_ready and not line.pending_is_downgrade)
            and (op == 0 or state == 2)
        ):
            # Hit (same predicate as AccessOutcome.HIT via can_serve).
            if op:
                self._perform_write(core_id, line)
            elif self._check:
                self._check_read(core_id, line)
            stats = self._core_stats[core_id]
            stats.hits += 1
            if runahead:
                stats.runahead_hits += 1
            stats.total_memory_latency += self._hit_latency
            if self.listeners:
                self._emit(
                    "hit", core=core_id, line=line_addr, op=MemOp(op).name,
                    runahead=runahead,
                )
            return True
        if runahead:
            return False
        op = MemOp(op)
        outcome = self.caches[core_id].classify(op, line_addr)
        assert outcome != AccessOutcome.HIT
        if core_id in self._requests:
            raise RuntimeError(f"core {core_id} already has an outstanding request")
        self._seq += 1
        req = CoherenceRequest(
            req_id=self._seq,
            core_id=core_id,
            line_addr=line_addr,
            kind=outcome.req_kind,
            op=op,
            issue_cycle=self.kernel.now,
        )
        self._requests[core_id] = req
        self._emit(
            "miss", core=core_id, line=line_addr, req_kind=req.kind.name,
            req_id=req.req_id,
        )
        self.request_arbitration()
        return False

    def on_core_done(self, core_id: int, cycle: int) -> None:
        """Core callback: the core retired its last access at ``cycle``."""
        self.stats.core(core_id).finish_cycle = cycle
        self._done_count += 1

    # ----------------------------------------------------------- the oracle

    def _perform_write(self, core_id: int, line: CacheLine) -> None:
        """Perform a store: bump the golden version of the line."""
        addr = line.line_addr
        if self.config.check_coherence:
            if line.state != LineState.M:
                raise CoherenceViolationError(
                    f"c{core_id} stores to line {addr} in state {line.state.name}"
                )
            for cache in self.caches:
                if cache.core_id == core_id:
                    continue
                other = cache.lookup(addr)
                if other is not None and other.valid:
                    raise CoherenceViolationError(
                        f"c{core_id} writes line {addr} while c{cache.core_id} "
                        f"holds it in {other.state.name} "
                        f"(cycle {self.kernel.now})"
                    )
        version = self._golden.get(addr, 0) + 1
        self._golden[addr] = version
        line.version = version
        line.dirty = True

    def _check_read(self, core_id: int, line: CacheLine) -> None:
        """Check a load observes the latest performed write."""
        if not self.config.check_coherence:
            return
        addr = line.line_addr
        expected = self._golden.get(addr, 0)
        if line.version != expected:
            raise CoherenceViolationError(
                f"c{core_id} reads line {addr} version {line.version}, "
                f"expected {expected} (cycle {self.kernel.now})"
            )

    # ------------------------------------------------------------ arbitration

    def request_arbitration(self, at: Optional[int] = None) -> None:
        """Schedule an arbitration round (idempotent per cycle)."""
        t = self.kernel.now if at is None else at
        if self._arb_scheduled_at is not None and self._arb_scheduled_at <= t:
            return
        self._arb_scheduled_at = t
        self.kernel.schedule(t, PHASE_ARBITRATE, self._arbitrate)

    def _collect_jobs(self) -> List[BusJob]:
        jobs: List[BusJob] = []
        for req in self._requests.values():
            if req.state == ReqState.QUEUED:
                jobs.append(
                    BusJob(JobKind.BROADCAST, req.core_id, req.req_id, req=req)
                )
            elif req.state == ReqState.WAITING and req.ready:
                jobs.append(BusJob(JobKind.DATA, req.core_id, req.req_id, req=req))
        if self.config.wb_on_bus:
            for line_addr, wb in self._wbs.items():
                if line_addr not in self._wb_inflight:
                    jobs.append(BusJob(JobKind.WRITEBACK, wb.core_id, wb.seq, wb=wb))
        return jobs

    def _arbitrate(self) -> None:
        self._arb_scheduled_at = None
        now = self.kernel.now
        if not self.bus.idle(now):
            return
        jobs = self._collect_jobs()
        if not jobs:
            return
        busy_cores = set(self._requests.keys())
        decision = self.arbiter.decide(now, jobs, busy_cores)
        if decision.job is None:
            if decision.wake_at is not None and decision.wake_at > now:
                self.request_arbitration(at=decision.wake_at)
            return
        self._grant(decision.job)

    def _grant(self, job: BusJob) -> None:
        now = self.kernel.now
        lat = self.config.latencies
        if job.kind == JobKind.BROADCAST:
            req = job.req
            assert req.state == ReqState.QUEUED
            req.state = ReqState.BROADCASTING
            duration = lat.request
            handler, payload = self._on_broadcast_done, req
        elif job.kind == JobKind.DATA:
            req = job.req
            assert req.state == ReqState.WAITING and req.ready, req
            req.state = ReqState.TRANSFERRING
            self._transfer_line = req.line_addr
            if req.source is not None and req.source >= 0:
                self._transfer_source = (req.source, req.line_addr)
            duration = lat.data
            handler, payload = self._on_data_done, req
            # Hold back other waiters on this line while the transfer runs.
            self._update_line(req.line_addr)
        else:  # WRITEBACK on the shared bus
            wb = job.wb
            self._wb_inflight.add(wb.line_addr)
            duration = lat.data
            handler, payload = self._on_wb_done, wb
        done_at = self.bus.grant(job, now, duration)
        self.stats.record_grant(job.kind.name, duration)
        if self.listeners:
            self._emit(
                "grant", job=job.kind.name, core=job.core_id,
                line=(job.req.line_addr if job.req else job.wb.line_addr),
                until=done_at,
            )
        self.kernel.schedule(
            done_at, PHASE_EFFECT, self._complete_grant, handler, payload
        )

    def _complete_grant(self, handler, payload) -> None:
        """Bus transaction finished: release the bus and run its handler."""
        self.bus.release(self.kernel.now)
        handler(payload)
        self.request_arbitration()

    # --------------------------------------------------------------- snooping

    def _waiting_reqs(self, line_addr: int) -> List[CoherenceRequest]:
        return [
            r
            for r in self._line_reqs.get(line_addr, [])
            if r.state in (ReqState.WAITING, ReqState.TRANSFERRING)
        ]

    def _on_broadcast_done(self, req: CoherenceRequest) -> None:
        req.state = ReqState.WAITING
        req.broadcast_cycle = self.kernel.now
        self._line_reqs.setdefault(req.line_addr, []).append(req)
        if req.kind == ReqKind.UPG and self._earlier_writer_waiting(req):
            # Bus order: an ownership request broadcast before this upgrade
            # wins the line first.  The upgrader self-invalidates its shared
            # copy *now* — otherwise its own timer would delay the older
            # writer and, transitively (same-line FIFO), its own re-queued
            # GetM beyond the Equation-1 bound, which excludes the
            # requester's own θ.
            own = self.caches[req.core_id].lookup(req.line_addr)
            if own is not None and own.valid:
                own.invalidate()
            req.kind = ReqKind.GETM
        self._refresh_snoop(req.line_addr)
        self._update_line(req.line_addr)

    def _refresh_snoop(self, line_addr: int) -> None:
        """Re-assert pending-invalidation flags implied by waiting requests.

        Idempotent: called after every event that may have created a new
        copy or a new waiting request for the line.  MSI copies conflicting
        with a waiting writer are invalidated (S) or conceded (M)
        immediately; timed copies get their countdown-counter expiry
        scheduled per Figure 3.
        """
        reqs = self._waiting_reqs(line_addr)
        if not reqs:
            return
        now = self.kernel.now
        for cache in self.caches:
            copy = cache.lookup(line_addr)
            if copy is None or not copy.valid:
                continue
            cid = cache.core_id
            writer = any(r.wants_ownership and r.core_id != cid for r in reqs)
            reader = copy.state == LineState.M and any(
                r.kind == ReqKind.GETS and r.core_id != cid for r in reqs
            )
            if not writer and not reader:
                continue
            downgrade = reader and not writer
            if cache.is_msi:
                if copy.state == LineState.S:
                    # A snooping MSI core gives up a shared copy at once.
                    copy.invalidate()
                else:
                    # A snooping MSI owner concedes immediately and only
                    # remains as the data source of the handover.
                    if copy.pending_inv_since is None:
                        copy.pending_inv_since = now
                    copy.pending_is_downgrade = downgrade
                    copy.inv_at = copy.pending_inv_since
                    copy.handover_ready = True
            else:
                newly = copy.pending_inv_since is None
                cache.mark_pending(copy, now, downgrade=downgrade)
                if newly and not copy.handover_ready:
                    self._schedule_expiry(cache, copy)

    def _schedule_expiry(self, cache: PrivateCache, copy: CacheLine) -> None:
        assert copy.inv_at is not None
        self.kernel.schedule(
            copy.inv_at,
            PHASE_EFFECT,
            self._on_timer_expiry,
            cache.core_id,
            copy.line_addr,
            copy.generation,
        )

    def _on_timer_expiry(
        self, core_id: int, line_addr: int, generation: int
    ) -> None:
        cache = self.caches[core_id]
        copy = cache.lookup(line_addr)
        if copy is None or copy.generation != generation:
            return
        if copy.pending_inv_since is None or copy.inv_at is None:
            return
        now = self.kernel.now
        if now < copy.inv_at:
            return
        if self._transfer_source == (core_id, line_addr):
            # The line is mid-transfer as a data source; act right after.
            self.kernel.schedule(
                self.bus.busy_until,
                PHASE_EFFECT,
                self._on_timer_expiry,
                core_id,
                line_addr,
                generation,
            )
            return
        self.stats.timer_expiries += 1
        self._emit(
            "timer_expiry", core=core_id, line=line_addr,
            state=copy.state.name,
            downgrade=copy.pending_is_downgrade,
        )
        if copy.state == LineState.M:
            copy.handover_ready = True
        else:
            copy.invalidate()
        self._update_line(line_addr)

    # ------------------------------------------------------------- readiness

    def _update_line(self, line_addr: int) -> None:
        """Re-evaluate readiness of every waiting request for the line."""
        self._update_line_inner(line_addr)
        if any(
            r.state == ReqState.WAITING and r.ready
            for r in self._line_reqs.get(line_addr, [])
        ):
            self.request_arbitration()

    def _update_line_inner(self, line_addr: int) -> None:
        while True:
            reqs = [
                r
                for r in self._line_reqs.get(line_addr, [])
                if r.state == ReqState.WAITING
            ]
            if not reqs:
                return
            transfer_in_flight = any(
                r.state == ReqState.TRANSFERRING
                for r in self._line_reqs.get(line_addr, [])
            )
            for r in reqs:
                r.ready = False
                r.source = None
            if transfer_in_flight:
                return
            copies = []
            for cache in self.caches:
                copy = cache.lookup(line_addr)
                if copy is not None and copy.valid:
                    copies.append((cache, copy))
            owners = [(c, cp) for c, cp in copies if cp.state == LineState.M]
            assert len(owners) <= 1, f"multiple owners of line {line_addr}"
            owner = owners[0] if owners else None
            # Same-line requests are served strictly in bus (broadcast)
            # order.  A younger request must never leapfrog an older one:
            # its fresh fill would open a *second* timer window against
            # the older requester, exceeding the per-core θ_j budget of
            # Equation 1.  (Found twice by the property suite — once via
            # racing upgrades, once via a reader overtaking a writer.)
            oldest = min(reqs, key=lambda r: (r.broadcast_cycle, r.req_id))
            if not self._evaluate_request(oldest, copies, owner):
                return

    def _evaluate_request(
        self,
        req: CoherenceRequest,
        copies: List[Tuple[PrivateCache, CacheLine]],
        owner: Optional[Tuple[PrivateCache, CacheLine]],
    ) -> bool:
        """Compute readiness of one waiting request.

        Returns True when evaluation *changed cache state* (an upgrade
        completed, or a PCC-style owner spill), which invalidates the
        caller's copies/owner snapshot and forces a re-evaluation pass.
        """
        line_addr = req.line_addr
        req.ready = False
        req.source = None

        if req.kind == ReqKind.UPG:
            own_cache = self.caches[req.core_id]
            own = own_cache.lookup(line_addr)
            if own is None or not own.valid or own.frozen:
                # Lost the local copy while waiting: needs data after all.
                req.kind = ReqKind.GETM
            elif self._earlier_writer_waiting(req):
                # Bus order: an ownership request broadcast before this
                # upgrade wins the line first.  Completing here would
                # restart the timer window over the earlier writer and
                # break the Equation-1 bound.  The upgrader immediately
                # self-invalidates its shared copy (it is about to lose it
                # anyway) so that its own timer never delays the winner —
                # and, transitively, its own re-queued GetM.
                own.invalidate()
                req.kind = ReqKind.GETM
                return True
            else:
                blockers = [
                    cp for c, cp in copies if c.core_id != req.core_id and cp.valid
                ]
                if blockers:
                    return False
                self._complete_upgrade(req, own_cache, own)
                return True

        if req.kind == ReqKind.GETM:
            own_cache = self.caches[req.core_id]
            own = own_cache.lookup(line_addr)
            if own is not None and own.valid:
                # Our own (frozen) copy is still being handed to an earlier
                # winner; wait for that transfer to invalidate it.
                return False
            for cache, cp in copies:
                if cache.core_id == req.core_id:
                    continue
                if cp.state == LineState.M and cp.handover_ready:
                    continue  # acceptable: it is the data source
                return False  # a copy still protected by its timer
            if owner is not None and owner[0].core_id != req.core_id:
                ocache, ocopy = owner
                if not ocopy.handover_ready:
                    return False
                if self.config.via_llc_transfers:
                    # PCC family: the dirty owner writes back to the LLC and
                    # the requester re-fetches from there.
                    self._spill_owner(ocache, ocopy)
                    return True
                req.source = ocache.core_id
                req.ready = True
                return False
            return self._llc_source_ready(req)

        # GETS
        if owner is not None and owner[0].core_id != req.core_id:
            ocache, ocopy = owner
            if not ocopy.handover_ready:
                return False
            if self.config.via_llc_transfers:
                self._spill_owner(ocache, ocopy)
                return True
            req.source = ocache.core_id
            req.ready = True
            return False
        if owner is not None and owner[0].core_id == req.core_id:
            # Own frozen modified copy awaiting an earlier handover.
            return False
        return self._llc_source_ready(req)

    def _earlier_writer_waiting(self, req: CoherenceRequest) -> bool:
        """An ownership request from another core was broadcast before ours."""
        for other in self._line_reqs.get(req.line_addr, []):
            if other is req or other.core_id == req.core_id:
                continue
            if not other.wants_ownership:
                continue
            if other.state not in (ReqState.WAITING, ReqState.TRANSFERRING):
                continue
            if (other.broadcast_cycle, other.req_id) < (
                req.broadcast_cycle,
                req.req_id,
            ):
                return True
        return False

    def _llc_source_ready(self, req: CoherenceRequest) -> bool:
        """Mark the request ready from the LLC, starting a DRAM fetch if needed."""
        line_addr = req.line_addr
        if line_addr in self._wbs:
            return False  # the latest data is still in a write-back buffer
        if not self.llc.present(line_addr):
            self._start_dram_fetch(line_addr)
            return False
        req.source = LLC_SOURCE
        req.ready = True
        return False

    def _spill_owner(self, ocache: PrivateCache, ocopy: CacheLine) -> None:
        """PCC-style handover: invalidate the dirty owner into a write-back."""
        line_addr = ocopy.line_addr
        dirty = ocopy.dirty
        version = ocopy.version
        ocache.array.slot(line_addr).invalidate()
        if dirty:
            self._enqueue_writeback(ocache.core_id, line_addr, version)
        # Clean owner: the LLC already has the current version.

    # ------------------------------------------------------------ completions

    def _on_broadcast_or_data_cleanup(self, req: CoherenceRequest) -> None:
        line_reqs = self._line_reqs.get(req.line_addr)
        if line_reqs is not None:
            if req in line_reqs:
                line_reqs.remove(req)
            if not line_reqs:
                del self._line_reqs[req.line_addr]

    def _finish_request(self, req: CoherenceRequest, upgrade: bool) -> None:
        now = self.kernel.now
        self._emit(
            "fill", core=req.core_id, line=req.line_addr,
            req_kind=req.kind.name, latency=now - req.issue_cycle,
            upgrade=upgrade, source=req.source,
        )
        req.state = ReqState.DONE
        req.complete_cycle = now
        self._on_broadcast_or_data_cleanup(req)
        del self._requests[req.core_id]
        self.stats.core(req.core_id).record_miss(
            latency=now - req.issue_cycle, upgrade=upgrade
        )
        self.arbiter.on_request_completed(req.core_id)
        self.cores[req.core_id].on_fill(now)

    def _complete_upgrade(
        self, req: CoherenceRequest, cache: PrivateCache, own: CacheLine
    ) -> None:
        now = self.kernel.now
        own.state = LineState.M
        own.fill_cycle = now  # ownership acquired: the timer restarts
        own.clear_pending()
        own.generation += 1
        self._perform_write(req.core_id, own)
        self._finish_request(req, upgrade=True)
        self._refresh_snoop(req.line_addr)

    def _on_data_done(self, req: CoherenceRequest) -> None:
        now = self.kernel.now
        line_addr = req.line_addr
        self._transfer_source = None
        self._transfer_line = None
        if req.source == LLC_SOURCE:
            self.llc.record_access(line_addr, now)
            version = self.llc.version(line_addr)
        else:
            src_cache = self.caches[req.source]
            src = src_cache.lookup(line_addr)
            assert src is not None and src.state == LineState.M, (
                f"data source vanished for {req}"
            )
            version = src.version
            if req.kind == ReqKind.GETM:
                src.invalidate()
            else:
                # A reader handover.  An MSI owner downgrades M→S and keeps
                # its copy (plain MSI).  A *timed* owner's countdown counter
                # expired with the request pending, and per Figure 3 the
                # line is invalidated — keeping an S copy would start a
                # second protection window and break the Equation-1 bound
                # for any writer queued behind the reader.
                if src_cache.is_msi:
                    src.state = LineState.S
                    src.dirty = False
                    src.clear_pending()
                else:
                    src.invalidate()
                # The transfer snarfs the data into the LLC as well.
                self.llc.write_version(line_addr, version, now)

        state = LineState.M if req.kind == ReqKind.GETM else LineState.S
        cache = self.caches[req.core_id]
        victim = cache.fill(line_addr, state, now, version)
        new_line = cache.lookup(line_addr)
        if req.op == MemOp.STORE:
            self._perform_write(req.core_id, new_line)
        else:
            self._check_read(req.core_id, new_line)
        self._finish_request(req, upgrade=False)
        if victim is not None:
            self._handle_eviction(req.core_id, victim)
        self._refresh_snoop(line_addr)
        self._update_line(line_addr)

    def _handle_eviction(self, core_id: int, victim) -> None:
        if victim.dirty:
            self._enqueue_writeback(core_id, victim.line_addr, victim.version)
        self._refresh_snoop(victim.line_addr)
        self._update_line(victim.line_addr)

    def _enqueue_writeback(self, core_id: int, line_addr: int, version: int) -> None:
        assert line_addr not in self._wbs, (
            f"second write-back for line {line_addr} while one is pending"
        )
        self._seq += 1
        wb = Writeback(
            core_id=core_id,
            line_addr=line_addr,
            version=version,
            created_cycle=self.kernel.now,
            seq=self._seq,
        )
        self._wbs[line_addr] = wb
        self.stats.writebacks += 1
        if self.config.wb_on_bus:
            self.request_arbitration()
        else:
            # Dedicated write-back port: completes after the data latency.
            self.kernel.schedule(
                self.kernel.now + self.config.latencies.data,
                PHASE_EFFECT,
                self._on_wb_done,
                wb,
            )

    def _on_wb_done(self, wb: Writeback) -> None:
        self.llc.write_version(wb.line_addr, wb.version, self.kernel.now)
        self._wbs.pop(wb.line_addr, None)
        self._wb_inflight.discard(wb.line_addr)
        self._update_line(wb.line_addr)

    # ------------------------------------------------------------------ DRAM

    def _start_dram_fetch(self, line_addr: int) -> None:
        if line_addr in self._dram_fetches:
            return
        self._dram_fetches.add(line_addr)
        self.stats.dram_fetches += 1
        self.kernel.schedule(
            self.kernel.now + self.dram.latency,
            PHASE_EFFECT,
            self._on_dram_fill,
            line_addr,
        )

    def _on_dram_fill(self, line_addr: int) -> None:
        now = self.kernel.now
        victim_addr = self.llc.peek_victim(line_addr)
        if victim_addr is not None and (
            victim_addr == self._transfer_line or victim_addr in self._wbs
        ):
            # Evicting this victim now would corrupt an in-flight transfer
            # or an un-drained write-back; retry shortly.
            self.kernel.schedule(
                max(now + 1, self.bus.busy_until),
                PHASE_EFFECT,
                self._on_dram_fill,
                line_addr,
            )
            return
        self._dram_fetches.discard(line_addr)
        victim = self.llc.fill_from_memory(line_addr, now)
        if victim is not None:
            merged = victim.version
            for cache in self.caches:
                snap = cache.back_invalidate(victim.line_addr)
                if snap is not None:
                    self.stats.back_invalidations += 1
                    if snap.dirty:
                        merged = snap.version
            victim.version = merged
            self.llc.evict_to_memory(victim)
            self._refresh_snoop(victim.line_addr)
            self._update_line(victim.line_addr)
        self._update_line(line_addr)

    # ----------------------------------------------------------- mode switch

    def set_theta(self, core_id: int, theta: int) -> None:
        """Reprogram one core's timer register at run time (Section VI).

        Applies to lines filled (or marked pending) from now on; lines with
        an already-scheduled expiry keep their old deadline.
        """
        self.caches[core_id].set_theta(theta)

    def switch_mode(self, mode: int) -> None:
        """Program every cache controller from its Mode-Switch LUT."""
        for cache in self.caches:
            if mode in cache.lut:
                cache.apply_mode(mode)
        self.stats.mode_switches += 1
        self._emit("mode_switch", mode=mode, thetas=self.config_thetas())

    def config_thetas(self) -> List[int]:
        """The timer registers as currently programmed (may differ from
        the static configuration after run-time switches)."""
        return [cache.theta for cache in self.caches]


def run_simulation(
    config: SimConfig,
    traces: Sequence[Trace],
    record_latencies: bool = False,
    fast_path: bool = True,
) -> SystemStats:
    """Convenience wrapper: build a :class:`System`, run it, return stats."""
    return System(
        config, traces, record_latencies=record_latencies, fast_path=fast_path
    ).run()
