"""The whole-system simulator: an orchestrator over the layered stack.

:class:`System` wires the layers of Section III together and owns almost
no protocol logic itself:

* the **core layer** (:mod:`repro.sim.core`) issues accesses; the only
  hot path here is :meth:`System.try_access`, whose hit predicate is
  inlined (it is the single hottest function of the simulator),
* the **protocol layer** (:mod:`repro.sim.protocols`) decides per-line
  transitions from data-driven tables; the protocol is resolved from
  ``config.protocol`` through the registry at build time,
* the **engine** (:mod:`repro.sim.engine`) executes coherence requests
  against caches and bus, enforcing the protocol-independent invariants
  (same-line FIFO in bus order, single writer),
* the **memory backend** (:mod:`repro.sim.backend`) sources data and
  drains write-backs (perfect LLC, or LLC + DRAM per footnote 1),
* the **event bus** (:mod:`repro.sim.events`) carries every observable
  occurrence to the stats collector, tracers and per-layer counters,
* the **oracle** (:mod:`repro.sim.oracle`) tracks golden values and — in
  the test-suite — checks the single-writer/read-latest invariants.

What remains here: construction and wiring, the per-access hit fast
path, bus arbitration scheduling, and the run-time mode-switch plumbing
of Section VI.  The engine is event-driven but cycle-accurate: all
activity happens at integer cycles, ordered by the phases of
:mod:`repro.sim.kernel`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.fi.injector import FaultInjector
    from repro.fi.plan import FaultPlan

from repro.params import MemOp, SimConfig
from repro.sim.arbiter import Arbiter, build_arbiter
from repro.sim.backend import MemoryBackend, build_backend
from repro.sim.bus import SharedBus
from repro.sim.core import Core
from repro.sim.dram import FixedLatencyDRAM
from repro.sim.engine import ProtocolEngine
from repro.sim.events import EventBus
from repro.sim.kernel import (
    PHASE_ARBITRATE,
    PHASE_CORE,
    PHASE_EFFECT,
    EventKernel,
)
from repro.sim.llc import SharedLLC
from repro.sim.messages import BusJob, JobKind, ReqState, Writeback
from repro.sim.oracle import CoherenceOracle, CoherenceViolationError
from repro.sim.private_cache import AccessOutcome, PrivateCache
from repro.sim.protocols import get_protocol
from repro.sim.stats import CoreStats, StatsCollector, SystemStats
from repro.sim.trace import Trace

__all__ = [
    "System",
    "run_simulation",
    "CoherenceViolationError",
]


class System:
    """One simulated multi-core system executing a set of traces."""

    PHASE_EFFECT = PHASE_EFFECT
    PHASE_CORE = PHASE_CORE
    PHASE_ARBITRATE = PHASE_ARBITRATE

    def __init__(
        self,
        config: SimConfig,
        traces: Sequence[Trace],
        record_latencies: bool = False,
        fast_path: bool = True,
        fault_plan: Optional["FaultPlan"] = None,
    ) -> None:
        """``fast_path=False`` disables inline hit batching (one heap
        event per access, the seed engine's behaviour); results are
        cycle-identical either way — the flag exists so the regression
        suite can assert exactly that.

        ``fault_plan`` arms a :class:`repro.fi.injector.FaultInjector`
        over this system; with the default ``None`` the fault layer is
        never imported or constructed and cycle counts are byte-identical
        to a build without it (the throughput gate asserts this)."""
        if len(traces) != config.num_cores:
            raise ValueError(
                f"{config.num_cores} cores but {len(traces)} traces supplied"
            )
        self.config = config
        self.kernel = self._make_kernel()
        self.events = EventBus(self.kernel)
        self.bus = SharedBus()
        self.arbiter: Arbiter = build_arbiter(config)
        self.protocol = get_protocol(config.protocol)
        self.dram = FixedLatencyDRAM(config.dram_latency)
        self.backend: MemoryBackend = build_backend(config, self.dram)
        self.caches: List[PrivateCache] = [
            self._make_cache(i) for i in range(config.num_cores)
        ]
        #: Operating mode last programmed through :meth:`switch_mode`
        #: (None until the first run-time switch; Section VI).
        self.current_mode: Optional[int] = None
        self.oracle = CoherenceOracle(
            config.check_coherence, self.caches, lambda: self.kernel.now,
            core_info=self._oracle_core_info,
        )
        self.engine = self._make_engine()
        self.backend.attach(self)
        self.cores: List[Core] = [
            self._make_core(i, traces[i], fast_path)
            for i in range(config.num_cores)
        ]
        self.stats = SystemStats(
            cores=[
                CoreStats(
                    core_id=i,
                    request_latencies=[] if record_latencies else None,
                )
                for i in range(config.num_cores)
            ]
        )
        StatsCollector(self.stats).attach(self.events)
        # Hot-path shortcuts (avoid per-access attribute chains).
        self._core_stats: List[CoreStats] = self.stats.cores
        self._hit_latency = config.latencies.hit
        self._check = config.check_coherence
        self._perform_write = self.oracle.perform_write
        self._check_read = self.oracle.check_read
        #: The protocol's HIT set matches the inlined hit predicate below;
        #: exotic protocols fall back to the general classify() per access.
        self._std_hits = self.protocol.uses_standard_hits()

        self._seq = 0
        self._arb_scheduled_at: Optional[int] = None
        self._done_count = 0
        self._started = False

        #: Armed fault injector, or None on a fault-free run.  Built
        #: last so the injector sees a fully-wired system; imported
        #: lazily so fault-free runs never touch :mod:`repro.fi`.
        self.injector: Optional["FaultInjector"] = None
        if fault_plan is not None:
            from repro.fi.injector import FaultInjector

            self.injector = FaultInjector(self, fault_plan)
            self.injector.arm()

    # ------------------------------------------------------- factory seams
    #
    # Component construction is routed through overridable hooks so that
    # alternative engines (the lock-step batch engine of
    # :mod:`repro.sim.lockstep`) can substitute instrumented subclasses
    # without touching the wiring above.  The defaults build exactly the
    # components the seed engine always built.

    def _make_kernel(self) -> EventKernel:
        return EventKernel()

    def _make_cache(self, core_id: int) -> PrivateCache:
        return PrivateCache(
            core_id, self.config.l1, self.config.core_config(core_id).theta,
            protocol=self.protocol,
        )

    def _make_engine(self) -> ProtocolEngine:
        return ProtocolEngine(self)

    def _make_core(self, core_id: int, trace: Trace, fast_path: bool) -> Core:
        return Core(
            core_id=core_id,
            trace=trace,
            system=self,
            line_bytes=self.config.l1.line_bytes,
            hit_latency=self.config.latencies.hit,
            runahead_window=self.config.runahead_window,
            fast_path=fast_path,
        )

    # ------------------------------------------------------------ properties

    @property
    def llc(self) -> SharedLLC:
        """The shared LLC (owned by the memory backend)."""
        return self.backend.llc

    @property
    def listeners(self):
        """Subscribe-all event listeners (legacy alias; see
        :meth:`repro.sim.events.EventBus.subscribe`)."""
        return self.events.listeners

    def next_seq(self) -> int:
        """A fresh bus-order sequence number (requests and write-backs
        share one space: the arbiter breaks ties on it)."""
        self._seq += 1
        return self._seq

    # ------------------------------------------------------------------ run

    def run(self) -> SystemStats:
        """Execute all traces to completion; returns the collected stats."""
        if self._started:
            raise RuntimeError("a System can only be run once")
        self._started = True
        for core in self.cores:
            core.start()
        self.kernel.run(
            self.config.max_cycles,
            until=lambda: self._done_count >= len(self.cores),
        )
        self.stats.final_cycle = self.kernel.now
        if self.engine.requests:
            raise RuntimeError(
                f"simulation finished with outstanding requests: "
                f"{list(self.engine.requests.values())}"
            )
        return self.stats

    # -------------------------------------------------------- core callbacks

    def try_access(
        self, core_id: int, op: int, line_addr: int, runahead: bool
    ) -> bool:
        """Attempt a local access; True on hit (performed), False on miss.

        Run-ahead probes never create coherence requests: the core model
        allows only one outstanding miss.  ``op`` is a plain int
        (:class:`MemOp` value); the hit path is inlined — it is the
        single hottest function of the simulator.
        """
        if self._std_hits:
            array = self.caches[core_id].array
            line = array._lines[line_addr & array._set_mask]
            state = line.state
            if (
                state
                and line.line_addr == line_addr
                and not (line.handover_ready and not line.pending_is_downgrade)
                and (op == 0 or state == 2)
            ):
                # Hit (same predicate as AccessOutcome.HIT via can_serve).
                if op:
                    self._perform_write(core_id, line)
                elif self._check:
                    self._check_read(core_id, line)
                stats = self._core_stats[core_id]
                stats.hits += 1
                if runahead:
                    stats.runahead_hits += 1
                stats.total_memory_latency += self._hit_latency
                if self.events.hot:
                    self.events.emit(
                        "hit", core=core_id, line=line_addr,
                        op=MemOp(op).name, runahead=runahead,
                    )
                return True
        else:
            # General path: the protocol's classify table decides hits.
            cache = self.caches[core_id]
            outcome = self.protocol.classify(cache, MemOp(op), line_addr)
            if outcome is AccessOutcome.HIT:
                line = cache.lookup(line_addr)
                if op:
                    self._perform_write(core_id, line)
                elif self._check:
                    self._check_read(core_id, line)
                stats = self._core_stats[core_id]
                stats.hits += 1
                if runahead:
                    stats.runahead_hits += 1
                stats.total_memory_latency += self._hit_latency
                if self.events.hot:
                    self.events.emit(
                        "hit", core=core_id, line=line_addr,
                        op=MemOp(op).name, runahead=runahead,
                    )
                return True
        if runahead:
            return False
        op = MemOp(op)
        outcome = self.caches[core_id].classify(op, line_addr)
        assert outcome != AccessOutcome.HIT
        self.engine.start_request(core_id, op, line_addr, outcome)
        return False

    def on_core_done(self, core_id: int, cycle: int) -> None:
        """Core callback: the core retired its last access at ``cycle``."""
        self.stats.core(core_id).finish_cycle = cycle
        self._done_count += 1

    # ------------------------------------------------------------ arbitration

    def request_arbitration(self, at: Optional[int] = None) -> None:
        """Schedule an arbitration round (idempotent per cycle)."""
        t = self.kernel.now if at is None else at
        if self._arb_scheduled_at is not None and self._arb_scheduled_at <= t:
            return
        self._arb_scheduled_at = t
        self.kernel.schedule(t, PHASE_ARBITRATE, self._arbitrate)

    def _collect_jobs(self) -> List[BusJob]:
        jobs: List[BusJob] = []
        for req in self.engine.requests.values():
            if req.state == ReqState.QUEUED:
                job = req.bcast_job
                if job is None:
                    job = req.bcast_job = BusJob(
                        JobKind.BROADCAST, req.core_id, req.req_id, req=req
                    )
                jobs.append(job)
            elif req.state == ReqState.WAITING and req.ready:
                job = req.data_job
                if job is None:
                    job = req.data_job = BusJob(
                        JobKind.DATA, req.core_id, req.req_id, req=req
                    )
                jobs.append(job)
        jobs.extend(self.backend.bus_jobs())
        return jobs

    def _arbitrate(self) -> None:
        now = self.kernel.now
        # Consume the dedup marker only when this round is the recorded
        # one; a duplicate round must leave a still-pending future marker
        # alone or every duplicate would re-schedule its own successor.
        if self._arb_scheduled_at is not None and self._arb_scheduled_at <= now:
            self._arb_scheduled_at = None
        if not self.bus.idle(now):
            # Re-arm for the cycle the bus frees up.  Grant completions
            # re-request arbitration themselves, so this only matters when
            # the bus is held past the current job by an injected stall —
            # without it, a round that lands inside the stall window would
            # silently swallow the pending request.
            self.request_arbitration(at=self.bus.busy_until)
            return
        jobs = self._collect_jobs()
        if not jobs:
            return
        busy_cores = set(self.engine.requests.keys())
        decision = self.arbiter.decide(now, jobs, busy_cores)
        if decision.job is None:
            if decision.wake_at is not None and decision.wake_at > now:
                self.request_arbitration(at=decision.wake_at)
            return
        self._grant(decision.job)

    def _grant(self, job: BusJob) -> None:
        now = self.kernel.now
        lat = self.config.latencies
        if job.kind == JobKind.BROADCAST:
            req = job.req
            assert req.state == ReqState.QUEUED
            req.state = ReqState.BROADCASTING
            duration = lat.request
            handler, payload = self.engine.on_broadcast_done, req
        elif job.kind == JobKind.DATA:
            req = job.req
            self.engine.begin_transfer(req)
            duration = lat.data
            handler, payload = self.engine.on_data_done, req
        else:  # WRITEBACK on the shared bus
            wb = job.wb
            self.backend.mark_inflight(wb)
            duration = lat.data
            handler, payload = self._on_bus_wb_done, wb
        done_at = self.bus.grant(job, now, duration)
        self.events.emit(
            "grant", job=job.kind.name, core=job.core_id,
            line=(job.req.line_addr if job.req else job.wb.line_addr),
            duration=duration, until=done_at,
        )
        self.kernel.schedule(
            done_at, PHASE_EFFECT, self._complete_grant, handler, payload
        )

    def _complete_grant(self, handler, payload) -> None:
        """Bus transaction finished: release the bus and run its handler."""
        self.bus.release(self.kernel.now)
        handler(payload)
        self.request_arbitration()

    def _on_bus_wb_done(self, wb: Writeback) -> None:
        """A write-back granted on the shared bus finished draining.

        The arbiter is notified so RROF consumes the core's turn — the
        shared-WB analytical bound budgets one write-back slot per
        competing core (``wcl_miss_shared_wb``).  Dedicated-port
        write-backs never pass through here.
        """
        self.backend.on_wb_done(wb)
        self.arbiter.on_writeback_completed(wb.core_id)

    # ----------------------------------------------------------- mode switch

    def set_theta(self, core_id: int, theta: int) -> None:
        """Reprogram one core's timer register at run time (Section VI).

        Applies to lines filled (or marked pending) from now on; lines with
        an already-scheduled expiry keep their old deadline.
        """
        self.caches[core_id].set_theta(theta)

    def switch_mode(self, mode: int) -> None:
        """Program every cache controller from its Mode-Switch LUT."""
        self.current_mode = mode
        for cache in self.caches:
            if mode in cache.lut:
                cache.apply_mode(mode)
        self.events.emit("mode_switch", mode=mode, thetas=self.config_thetas())

    def _oracle_core_info(self, core_id: int) -> Dict[str, object]:
        """Context the oracle folds into violation diagnostics."""
        return {
            "criticality": self.config.core_config(core_id).criticality,
            "mode": self.current_mode,
        }

    def config_thetas(self) -> List[int]:
        """The timer registers as currently programmed (may differ from
        the static configuration after run-time switches)."""
        return [cache.theta for cache in self.caches]


def run_simulation(
    config: SimConfig,
    traces: Sequence[Trace],
    record_latencies: bool = False,
    fast_path: bool = True,
    fault_plan: Optional["FaultPlan"] = None,
) -> SystemStats:
    """Convenience wrapper: build a :class:`System`, run it, return stats."""
    return System(
        config, traces, record_latencies=record_latencies, fast_path=fast_path,
        fault_plan=fault_plan,
    ).run()
