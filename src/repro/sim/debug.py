"""Protocol-level tracing and timeline rendering.

Attach a :class:`ProtocolTracer` to a :class:`~repro.sim.system.System`
before running it to capture every protocol event (accesses, misses,
bus grants, timer expiries, fills, mode switches) and render them as a
human-readable timeline — the tool you want when a latency looks wrong.

Example::

    system = System(config, traces)
    tracer = ProtocolTracer.attach(system)
    system.run()
    print(tracer.render(line=1))          # one line's full history
    print(tracer.render(core=0))          # one core's view
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional

from repro.sim.events import EVENT_KINDS
from repro.sim.system import System


@dataclass(frozen=True)
class ProtocolEvent:
    """One captured protocol event."""

    cycle: int
    kind: str
    payload: Dict[str, Any]

    @property
    def core(self) -> Optional[int]:
        return self.payload.get("core")

    @property
    def line(self) -> Optional[int]:
        return self.payload.get("line")

    def describe(self) -> str:
        """One-line human-readable rendering of the event."""
        parts = ", ".join(
            f"{k}={v}" for k, v in self.payload.items() if k not in ("core",)
        )
        who = f"c{self.core}" if self.core is not None else "sys"
        return f"{self.cycle:>8} {who:>4} {self.kind:<12} {parts}"


@dataclass
class ProtocolTracer:
    """Captures protocol events; optionally bounded to the last N."""

    max_events: Optional[int] = None
    events: List[ProtocolEvent] = field(default_factory=list)

    @classmethod
    def attach(
        cls, system: System, max_events: Optional[int] = None
    ) -> "ProtocolTracer":
        """Create a tracer and subscribe it to the system's event bus."""
        tracer = cls(max_events=max_events)
        system.events.subscribe(tracer)
        return tracer

    def __call__(self, cycle: int, kind: str, payload: Dict[str, Any]) -> None:
        self.events.append(ProtocolEvent(cycle, kind, dict(payload)))
        if self.max_events is not None and len(self.events) > self.max_events:
            del self.events[0]

    # -- queries --------------------------------------------------------------

    def filter(
        self,
        kind: Optional[str] = None,
        core: Optional[int] = None,
        line: Optional[int] = None,
        since: int = 0,
        until: Optional[int] = None,
    ) -> List[ProtocolEvent]:
        """Events matching every given criterion."""
        out = []
        for ev in self.events:
            if kind is not None and ev.kind != kind:
                continue
            if core is not None and ev.core != core:
                continue
            if line is not None and ev.line != line:
                continue
            if ev.cycle < since:
                continue
            if until is not None and ev.cycle > until:
                continue
            out.append(ev)
        return out

    def counts(self) -> Dict[str, int]:
        """Event counts per kind."""
        out: Dict[str, int] = {}
        for ev in self.events:
            out[ev.kind] = out.get(ev.kind, 0) + 1
        return out

    def fills(self, core: Optional[int] = None) -> List[ProtocolEvent]:
        """All request-completion events (optionally for one core)."""
        return self.filter(kind="fill", core=core)

    def worst_fill(self, core: Optional[int] = None) -> Optional[ProtocolEvent]:
        """The highest-latency request completion captured."""
        fills = self.fills(core)
        if not fills:
            return None
        return max(fills, key=lambda ev: ev.payload.get("latency", 0))

    # -- rendering ---------------------------------------------------------------

    def render(
        self,
        kind: Optional[str] = None,
        core: Optional[int] = None,
        line: Optional[int] = None,
        since: int = 0,
        until: Optional[int] = None,
        limit: int = 200,
    ) -> str:
        """A timeline of matching events (most recent ``limit``)."""
        events = self.filter(kind=kind, core=core, line=line,
                             since=since, until=until)
        shown = events[-limit:]
        header = f"{len(events)} events"
        if len(events) > len(shown):
            header += f" (showing last {len(shown)})"
        return "\n".join([header] + [ev.describe() for ev in shown])

    def explain_latency(self, core: int, min_latency: int = 0) -> str:
        """For each slow fill of ``core``, the line's preceding history.

        The go-to question — "why did this request take so long?" —
        answered by interleaving the fill with every event that touched
        its line during the request's lifetime.
        """
        blocks: List[str] = []
        for fill in self.fills(core):
            latency = fill.payload.get("latency", 0)
            if latency < min_latency:
                continue
            start = fill.cycle - latency
            history = self.filter(
                line=fill.line, since=start, until=fill.cycle
            )
            blocks.append(
                f"fill of line {fill.line} at {fill.cycle} "
                f"(latency {latency}):\n"
                + "\n".join("  " + ev.describe() for ev in history)
            )
        return "\n\n".join(blocks) if blocks else "(no matching fills)"


def trace_run(system: System, **filter_kwargs) -> ProtocolTracer:
    """Convenience: attach a tracer, run the system, return the tracer."""
    tracer = ProtocolTracer.attach(system)
    system.run()
    return tracer


def event_kinds() -> Iterable[str]:
    """The event kinds the stock engine layers emit (see
    :mod:`repro.sim.events` for the per-layer breakdown)."""
    return EVENT_KINDS
