"""The protocol-independent snooping engine.

:class:`ProtocolEngine` owns every in-flight coherence request and
executes the bus-side life cycle of Section III — broadcast, wait for
conflicting copies to be released, data transfer — while delegating the
three *per-line decisions* to the configured
:class:`~repro.sim.protocols.CoherenceProtocol`'s transition tables:

* how a resident copy reacts to a conflicting snoop
  (:meth:`~repro.sim.protocols.base.CoherenceProtocol.snoop_action`:
  invalidate / concede / arm the countdown timer),
* what an owner does after sourcing data for a reader
  (:meth:`~repro.sim.protocols.base.CoherenceProtocol.reader_handover`),
* whether dirty owner handovers are routed through the LLC
  (:meth:`~repro.sim.protocols.base.CoherenceProtocol.via_llc`,
  combining the protocol's discipline with ``via_llc_transfers``).

What stays *in* the engine is deliberately protocol-independent:
conflict detection (a waiting writer conflicts with every copy, a
waiting reader only with the owner), strict same-line FIFO service in
bus order (the Equation-1 invariant), the single-writer assertion, and
all backend/bus mechanics.  Data comes from and goes to the
:class:`~repro.sim.backend.MemoryBackend`; observations are published on
the :class:`~repro.sim.events.EventBus`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.params import MemOp
from repro.sim.cache import CacheLine, LineState
from repro.sim.kernel import PHASE_EFFECT
from repro.sim.messages import (
    LLC_SOURCE,
    CoherenceRequest,
    ReqKind,
    ReqState,
)
from repro.sim.private_cache import PrivateCache
from repro.sim.protocols.base import (
    AccessOutcome,
    CoherenceProtocol,
    HandoverAction,
    SnoopAction,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.system import System


class ProtocolEngine:
    """Executes coherence requests against one system's caches and bus."""

    def __init__(self, system: "System") -> None:
        self.system = system
        self.kernel = system.kernel
        self.events = system.events
        self.caches: List[PrivateCache] = system.caches
        self.protocol: CoherenceProtocol = system.protocol
        self.backend = system.backend
        self.oracle = system.oracle
        #: Effective transfer routing: the protocol's discipline OR'd with
        #: the configuration flag (the PCC baseline sets the latter).
        self._via_llc = system.protocol.via_llc(system.config.via_llc_transfers)
        #: core id → its single outstanding request.
        self.requests: Dict[int, CoherenceRequest] = {}
        self._line_reqs: Dict[int, List[CoherenceRequest]] = {}
        self._transfer_source: Optional[Tuple[int, int]] = None
        #: Line address of the in-flight data transfer (any source); the
        #: LLC must not evict it mid-transfer (non-perfect mode).
        self.transfer_line: Optional[int] = None

    # ----------------------------------------------------------- request entry

    def start_request(
        self, core_id: int, op: MemOp, line_addr: int, outcome: AccessOutcome
    ) -> CoherenceRequest:
        """Create the core's outstanding request and queue its broadcast."""
        if core_id in self.requests:
            raise RuntimeError(f"core {core_id} already has an outstanding request")
        system = self.system
        req = CoherenceRequest(
            req_id=system.next_seq(),
            core_id=core_id,
            line_addr=line_addr,
            kind=outcome.req_kind,
            op=op,
            issue_cycle=self.kernel.now,
        )
        self.requests[core_id] = req
        self.events.emit(
            "miss", core=core_id, line=line_addr, req_kind=req.kind.name,
            req_id=req.req_id,
        )
        system.request_arbitration()
        return req

    # --------------------------------------------------------------- snooping

    def _waiting_reqs(self, line_addr: int) -> List[CoherenceRequest]:
        return [
            r
            for r in self._line_reqs.get(line_addr, [])
            if r.state in (ReqState.WAITING, ReqState.TRANSFERRING)
        ]

    def on_broadcast_done(self, req: CoherenceRequest) -> None:
        """The request's broadcast bus slot completed: start waiting."""
        req.state = ReqState.WAITING
        req.broadcast_cycle = self.kernel.now
        self._line_reqs.setdefault(req.line_addr, []).append(req)
        if req.kind == ReqKind.UPG and self._earlier_writer_waiting(req):
            # Bus order: an ownership request broadcast before this upgrade
            # wins the line first.  The upgrader self-invalidates its shared
            # copy *now* — otherwise its own timer would delay the older
            # writer and, transitively (same-line FIFO), its own re-queued
            # GetM beyond the Equation-1 bound, which excludes the
            # requester's own θ.
            own = self.caches[req.core_id].lookup(req.line_addr)
            if own is not None and own.valid:
                own.invalidate()
            req.kind = ReqKind.GETM
        self.refresh_snoop(req.line_addr)
        self.update_line(req.line_addr)

    def refresh_snoop(self, line_addr: int) -> None:
        """Re-assert pending-invalidation flags implied by waiting requests.

        Idempotent: called after every event that may have created a new
        copy or a new waiting request for the line.  What a conflicting
        copy *does* is the protocol's call
        (:meth:`~repro.sim.protocols.base.CoherenceProtocol.snoop_action`):
        invalidate at once (MSI S copies), concede ownership at once
        while remaining the data source (MSI owners), or arm the
        countdown-counter expiry per Figure 3 (timed copies).
        """
        reqs = self._waiting_reqs(line_addr)
        if not reqs:
            return
        now = self.kernel.now
        protocol = self.protocol
        for cache in self.caches:
            copy = cache.lookup(line_addr)
            if copy is None or not copy.valid:
                continue
            cid = cache.core_id
            writer = any(r.wants_ownership and r.core_id != cid for r in reqs)
            reader = copy.state == LineState.M and any(
                r.kind == ReqKind.GETS and r.core_id != cid for r in reqs
            )
            if not writer and not reader:
                continue
            downgrade = reader and not writer
            action = protocol.snoop_action(cache, copy.state)
            if action is SnoopAction.INVALIDATE:
                # A snooping MSI core gives up a shared copy at once.
                copy.invalidate()
            elif action is SnoopAction.CONCEDE:
                # A snooping MSI owner concedes immediately and only
                # remains as the data source of the handover.
                if copy.pending_inv_since is None:
                    copy.arm_pending(now)
                copy.pending_is_downgrade = downgrade
                copy.inv_at = copy.pending_inv_since
                copy.handover_ready = True
            elif action is SnoopAction.TIMER:
                newly = copy.pending_inv_since is None
                cache.mark_pending(copy, now, downgrade=downgrade)
                if newly and not copy.handover_ready:
                    self._schedule_expiry(cache, copy)
            # SnoopAction.IGNORE: the copy is unaffected.

    def _schedule_expiry(self, cache: PrivateCache, copy: CacheLine) -> None:
        assert copy.inv_at is not None
        self.kernel.schedule(
            copy.inv_at,
            PHASE_EFFECT,
            self.on_timer_expiry,
            cache.core_id,
            copy.line_addr,
            copy.generation,
        )

    def on_timer_expiry(
        self, core_id: int, line_addr: int, generation: int
    ) -> None:
        """A countdown-counter expiry fired (Figure 3); act if still live."""
        cache = self.caches[core_id]
        copy = cache.lookup(line_addr)
        if copy is None or copy.generation != generation:
            return
        if copy.pending_inv_since is None or copy.inv_at is None:
            return
        now = self.kernel.now
        if now < copy.inv_at:
            return
        if self._transfer_source == (core_id, line_addr):
            # The line is mid-transfer as a data source; act right after.
            self.kernel.schedule(
                self.system.bus.busy_until,
                PHASE_EFFECT,
                self.on_timer_expiry,
                core_id,
                line_addr,
                generation,
            )
            return
        self.events.emit(
            "timer_expiry", core=core_id, line=line_addr,
            state=copy.state.name,
            downgrade=copy.pending_is_downgrade,
        )
        if copy.state == LineState.M:
            copy.handover_ready = True
        else:
            copy.invalidate()
        self.update_line(line_addr)

    # ------------------------------------------------------------- readiness

    def update_line(self, line_addr: int) -> None:
        """Re-evaluate readiness of every waiting request for the line."""
        self._update_line_inner(line_addr)
        if any(
            r.state == ReqState.WAITING and r.ready
            for r in self._line_reqs.get(line_addr, [])
        ):
            self.system.request_arbitration()

    def _update_line_inner(self, line_addr: int) -> None:
        # The dict entry is only ever mutated in place (never replaced),
        # so one lookup serves every round of the loop below.
        all_reqs = self._line_reqs.get(line_addr)
        if not all_reqs:
            return
        caches = self.caches
        waiting_state = ReqState.WAITING
        transferring_state = ReqState.TRANSFERRING
        while True:
            reqs = []
            transfer_in_flight = False
            for r in all_reqs:
                state = r.state
                if state == waiting_state:
                    reqs.append(r)
                elif state == transferring_state:
                    transfer_in_flight = True
            if not reqs:
                return
            for r in reqs:
                r.ready = False
                r.source = None
            if transfer_in_flight:
                return
            copies = []
            owner = None
            for cache in caches:
                copy = cache.lookup(line_addr)
                if copy is not None and copy.valid:
                    copies.append((cache, copy))
                    if copy.state == LineState.M:
                        assert owner is None, (
                            f"multiple owners of line {line_addr}"
                        )
                        owner = (cache, copy)
            # Same-line requests are served strictly in bus (broadcast)
            # order.  A younger request must never leapfrog an older one:
            # its fresh fill would open a *second* timer window against
            # the older requester, exceeding the per-core θ_j budget of
            # Equation 1.  (Found twice by the property suite — once via
            # racing upgrades, once via a reader overtaking a writer.)
            oldest = min(reqs, key=lambda r: (r.broadcast_cycle, r.req_id))
            if not self._evaluate_request(oldest, copies, owner):
                return

    def _evaluate_request(
        self,
        req: CoherenceRequest,
        copies: List[Tuple[PrivateCache, CacheLine]],
        owner: Optional[Tuple[PrivateCache, CacheLine]],
    ) -> bool:
        """Compute readiness of one waiting request.

        Returns True when evaluation *changed cache state* (an upgrade
        completed, or a via-LLC owner spill), which invalidates the
        caller's copies/owner snapshot and forces a re-evaluation pass.
        """
        line_addr = req.line_addr
        req.ready = False
        req.source = None

        if req.kind == ReqKind.UPG:
            own_cache = self.caches[req.core_id]
            own = own_cache.lookup(line_addr)
            if own is None or not own.valid or own.frozen:
                # Lost the local copy while waiting: needs data after all.
                req.kind = ReqKind.GETM
            elif self._earlier_writer_waiting(req):
                # Bus order: an ownership request broadcast before this
                # upgrade wins the line first.  Completing here would
                # restart the timer window over the earlier writer and
                # break the Equation-1 bound.  The upgrader immediately
                # self-invalidates its shared copy (it is about to lose it
                # anyway) so that its own timer never delays the winner —
                # and, transitively, its own re-queued GetM.
                own.invalidate()
                req.kind = ReqKind.GETM
                return True
            else:
                blockers = [
                    cp for c, cp in copies if c.core_id != req.core_id and cp.valid
                ]
                if blockers:
                    return False
                self._complete_upgrade(req, own_cache, own)
                return True

        if req.kind == ReqKind.GETM:
            own_cache = self.caches[req.core_id]
            own = own_cache.lookup(line_addr)
            if own is not None and own.valid:
                # Our own (frozen) copy is still being handed to an earlier
                # winner; wait for that transfer to invalidate it.
                return False
            for cache, cp in copies:
                if cache.core_id == req.core_id:
                    continue
                if cp.state == LineState.M and cp.handover_ready:
                    continue  # acceptable: it is the data source
                return False  # a copy still protected by its timer
            if owner is not None and owner[0].core_id != req.core_id:
                ocache, ocopy = owner
                if not ocopy.handover_ready:
                    return False
                if self._via_llc:
                    # PCC/PMSI family: the dirty owner writes back to the
                    # LLC and the requester re-fetches from there.
                    self._spill_owner(ocache, ocopy)
                    return True
                req.source = ocache.core_id
                req.ready = True
                return False
            return self._backend_source_ready(req)

        # GETS
        if owner is not None and owner[0].core_id != req.core_id:
            ocache, ocopy = owner
            if not ocopy.handover_ready:
                return False
            if self._via_llc:
                self._spill_owner(ocache, ocopy)
                return True
            req.source = ocache.core_id
            req.ready = True
            return False
        if owner is not None and owner[0].core_id == req.core_id:
            # Own frozen modified copy awaiting an earlier handover.
            return False
        return self._backend_source_ready(req)

    def _earlier_writer_waiting(self, req: CoherenceRequest) -> bool:
        """An ownership request from another core was broadcast before ours."""
        for other in self._line_reqs.get(req.line_addr, []):
            if other is req or other.core_id == req.core_id:
                continue
            if not other.wants_ownership:
                continue
            if other.state not in (ReqState.WAITING, ReqState.TRANSFERRING):
                continue
            if (other.broadcast_cycle, other.req_id) < (
                req.broadcast_cycle,
                req.req_id,
            ):
                return True
        return False

    def _backend_source_ready(self, req: CoherenceRequest) -> bool:
        """Mark the request ready from the backend (may start a DRAM fetch)."""
        if not self.backend.ready_for_read(req.line_addr):
            return False
        req.source = LLC_SOURCE
        req.ready = True
        return False

    def _spill_owner(self, ocache: PrivateCache, ocopy: CacheLine) -> None:
        """Via-LLC handover: invalidate the dirty owner into a write-back."""
        line_addr = ocopy.line_addr
        dirty = ocopy.dirty
        version = ocopy.version
        ocache.array.slot(line_addr).invalidate()
        if dirty:
            self.backend.enqueue_writeback(ocache.core_id, line_addr, version)
        # Clean owner: the LLC already has the current version.

    # ------------------------------------------------------------ completions

    def begin_transfer(self, req: CoherenceRequest) -> None:
        """The arbiter granted this request its data-transfer bus slot."""
        assert req.state == ReqState.WAITING and req.ready, req
        req.state = ReqState.TRANSFERRING
        self.transfer_line = req.line_addr
        if req.source is not None and req.source >= 0:
            self._transfer_source = (req.source, req.line_addr)
        # Hold back other waiters on this line while the transfer runs.
        self.update_line(req.line_addr)

    def _on_broadcast_or_data_cleanup(self, req: CoherenceRequest) -> None:
        line_reqs = self._line_reqs.get(req.line_addr)
        if line_reqs is not None:
            if req in line_reqs:
                line_reqs.remove(req)
            if not line_reqs:
                del self._line_reqs[req.line_addr]

    def _finish_request(self, req: CoherenceRequest, upgrade: bool) -> None:
        now = self.kernel.now
        self.events.emit(
            "fill", core=req.core_id, line=req.line_addr,
            req_kind=req.kind.name, latency=now - req.issue_cycle,
            upgrade=upgrade, source=req.source,
        )
        req.state = ReqState.DONE
        req.complete_cycle = now
        self._on_broadcast_or_data_cleanup(req)
        del self.requests[req.core_id]
        self.system.arbiter.on_request_completed(req.core_id)
        self.system.cores[req.core_id].on_fill(now)

    def _complete_upgrade(
        self, req: CoherenceRequest, cache: PrivateCache, own: CacheLine
    ) -> None:
        now = self.kernel.now
        own.state = LineState.M
        own.fill_cycle = now  # ownership acquired: the timer restarts
        own.clear_pending()
        own.generation += 1
        self.oracle.perform_write(req.core_id, own)
        self._finish_request(req, upgrade=True)
        self.refresh_snoop(req.line_addr)

    def on_data_done(self, req: CoherenceRequest) -> None:
        """The data-transfer bus slot completed: fill and finish."""
        now = self.kernel.now
        line_addr = req.line_addr
        self._transfer_source = None
        self.transfer_line = None
        if req.source == LLC_SOURCE:
            self.backend.record_fill_access(line_addr, now)
            version = self.backend.version(line_addr)
        else:
            src_cache = self.caches[req.source]
            src = src_cache.lookup(line_addr)
            assert src is not None and src.state == LineState.M, (
                f"data source vanished for {req}"
            )
            version = src.version
            if req.kind == ReqKind.GETM:
                src.invalidate()
            else:
                # A reader handover: the owner's post-handover fate is the
                # protocol's call.  An MSI owner downgrades M→S and keeps
                # its copy (KEEP_SHARED).  A *timed* owner's countdown
                # counter expired with the request pending, and per
                # Figure 3 the line is invalidated — keeping an S copy
                # would start a second protection window and break the
                # Equation-1 bound for any writer queued behind the
                # reader.  PMSI-style protocols invalidate-on-share too.
                action = self.protocol.reader_handover(src_cache)
                if action is HandoverAction.KEEP_SHARED:
                    src.state = LineState.S
                    src.dirty = False
                    src.clear_pending()
                else:
                    src.invalidate()
                # The transfer snarfs the data into the LLC as well.
                self.backend.snarf(line_addr, version, now)

        state = LineState.M if req.kind == ReqKind.GETM else LineState.S
        cache = self.caches[req.core_id]
        victim = cache.fill(line_addr, state, now, version)
        new_line = cache.lookup(line_addr)
        if req.op == MemOp.STORE:
            self.oracle.perform_write(req.core_id, new_line)
        else:
            self.oracle.check_read(req.core_id, new_line)
        self._finish_request(req, upgrade=False)
        if victim is not None:
            self._handle_eviction(req.core_id, victim)
        self.refresh_snoop(line_addr)
        self.update_line(line_addr)

    def _handle_eviction(self, core_id: int, victim) -> None:
        if victim.dirty:
            self.backend.enqueue_writeback(core_id, victim.line_addr, victim.version)
        self.refresh_snoop(victim.line_addr)
        self.update_line(victim.line_addr)
