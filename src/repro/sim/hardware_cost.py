"""Hardware cost model of the CoHoRT architecture additions.

Section III-B argues the architecture is *low-cost*: one 16-bit counter
per private cache line (~3% of a 64-byte line), one 16-bit timer
threshold register per core, a Mode-Switch LUT with one 16-bit field per
mode (80 bits for the five avionics assurance levels), a comparator
against the special value, and a demultiplexer.  This module makes those
claims computable for any configuration so they can be asserted in tests
and reported alongside experiments.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.params import CacheGeometry, SimConfig
from repro.sim.timer import TIMER_BITS


@dataclass(frozen=True)
class CacheControllerCost:
    """Per-core storage added by CoHoRT to one cache controller (bits)."""

    counter_bits: int
    threshold_register_bits: int
    lut_bits: int

    @property
    def total_bits(self) -> int:
        return self.counter_bits + self.threshold_register_bits + self.lut_bits


@dataclass(frozen=True)
class SystemCost:
    """Whole-system CoHoRT storage overhead."""

    per_core: CacheControllerCost
    num_cores: int
    data_bits_per_core: int

    @property
    def total_bits(self) -> int:
        return self.per_core.total_bits * self.num_cores

    @property
    def relative_overhead(self) -> float:
        """Added bits relative to the private caches' data storage."""
        return self.per_core.total_bits / self.data_bits_per_core


def per_line_overhead(geometry: CacheGeometry) -> float:
    """Counter bits relative to one line's data bits (paper: ~3%)."""
    return TIMER_BITS / (geometry.line_bytes * 8)


def controller_cost(
    geometry: CacheGeometry, num_modes: int
) -> CacheControllerCost:
    """Storage one CoHoRT cache controller adds (Section III-B).

    One countdown counter per line, one timer threshold register, and a
    ``num_modes``-entry Mode-Switch LUT of 16-bit fields.
    """
    if num_modes < 1:
        raise ValueError("at least one operating mode is required")
    return CacheControllerCost(
        counter_bits=TIMER_BITS * geometry.num_lines,
        threshold_register_bits=TIMER_BITS,
        lut_bits=TIMER_BITS * num_modes,
    )


def system_cost(config: SimConfig, num_modes: int) -> SystemCost:
    """Whole-system CoHoRT overhead for a simulator configuration."""
    per_core = controller_cost(config.l1, num_modes)
    return SystemCost(
        per_core=per_core,
        num_cores=config.num_cores,
        data_bits_per_core=config.l1.size_bytes * 8,
    )
