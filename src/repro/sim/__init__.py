"""Cycle-accurate multi-core cache system simulator (the Octopus substrate).

Public entry points:

* :class:`repro.sim.system.System` / :func:`repro.sim.system.run_simulation`
  — build and run a simulated multi-core.
* :class:`repro.sim.trace.Trace` — the memory-access trace format.
* :class:`repro.sim.timer.CountdownCounter` / ``ModeSwitchLUT`` — the
  CoHoRT timer hardware models.
* :mod:`repro.sim.protocols` — the pluggable coherence-protocol registry
  (``timed_msi``, ``msi``, ``pmsi`` built in).
* :class:`repro.sim.events.EventBus` — the unified observability stream.
"""

from repro.sim.events import EventBus
from repro.sim.oracle import CoherenceViolationError
from repro.sim.protocols import available_protocols, get_protocol, register
from repro.sim.system import System, run_simulation
from repro.sim.trace import Trace, TraceAccess

__all__ = [
    "System",
    "run_simulation",
    "CoherenceViolationError",
    "EventBus",
    "Trace",
    "TraceAccess",
    "available_protocols",
    "get_protocol",
    "register",
]
