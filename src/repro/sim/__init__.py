"""Cycle-accurate multi-core cache system simulator (the Octopus substrate).

Public entry points:

* :class:`repro.sim.system.System` / :func:`repro.sim.system.run_simulation`
  — build and run a simulated multi-core.
* :class:`repro.sim.trace.Trace` — the memory-access trace format.
* :class:`repro.sim.timer.CountdownCounter` / ``ModeSwitchLUT`` — the
  CoHoRT timer hardware models.
"""

from repro.sim.system import CoherenceViolationError, System, run_simulation
from repro.sim.trace import Trace, TraceAccess

__all__ = [
    "System",
    "run_simulation",
    "CoherenceViolationError",
    "Trace",
    "TraceAccess",
]
