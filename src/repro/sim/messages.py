"""Coherence requests and bus jobs exchanged between simulator components."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Union

from repro.params import MemOp

#: Data source sentinel: the shared memory (LLC / DRAM) rather than a core.
LLC_SOURCE = -1


class ReqKind(enum.IntEnum):
    """Coherence bus request kinds."""

    GETS = 0  #: read miss — wants a Shared copy.
    GETM = 1  #: write miss — wants a Modified copy (with data).
    UPG = 2   #: write hit to a Shared copy — wants ownership, has data.


class ReqState(enum.IntEnum):
    """Lifecycle of a :class:`CoherenceRequest`."""

    QUEUED = 0         #: waiting for the bus to broadcast.
    BROADCASTING = 1   #: occupying the bus with the request broadcast.
    WAITING = 2        #: broadcast done; waiting for copies/data readiness.
    TRANSFERRING = 3   #: occupying the bus with the data transfer.
    DONE = 4


@dataclass
class CoherenceRequest:
    """One outstanding miss (or upgrade) of one core."""

    req_id: int
    core_id: int
    line_addr: int
    kind: ReqKind
    op: MemOp
    issue_cycle: int
    state: ReqState = ReqState.QUEUED
    broadcast_cycle: Optional[int] = None
    #: Data source once ready: a core id, or :data:`LLC_SOURCE`.
    source: Optional[int] = None
    #: The source is ready and the data transfer may be granted.
    ready: bool = False
    complete_cycle: Optional[int] = None
    #: For the non-perfect LLC: a DRAM fetch for this line is in flight.
    dram_pending: bool = False
    #: Lazily built arbitration jobs, reused across rounds (the job
    #: fields are invariant per request; see ``System._collect_jobs``).
    bcast_job: Optional["BusJob"] = None
    data_job: Optional["BusJob"] = None

    @property
    def wants_ownership(self) -> bool:
        return self.kind in (ReqKind.GETM, ReqKind.UPG)

    @property
    def latency(self) -> int:
        if self.complete_cycle is None:
            raise ValueError("request not complete")
        return self.complete_cycle - self.issue_cycle

    def __repr__(self) -> str:
        return (
            f"Req#{self.req_id}(c{self.core_id} {self.kind.name} "
            f"L{self.line_addr} @{self.issue_cycle} {self.state.name})"
        )


class JobKind(enum.IntEnum):
    """Bus occupancy job kinds, in descending per-core grant priority."""

    DATA = 0       #: data transfer for a ready request (L_data cycles).
    BROADCAST = 1  #: request broadcast (L_request cycles).
    WRITEBACK = 2  #: eviction write-back to the LLC (L_data cycles).


@dataclass
class Writeback:
    """A buffered dirty-eviction write-back."""

    core_id: int
    line_addr: int
    version: int
    created_cycle: int
    seq: int = 0


@dataclass
class BusJob:
    """One grantable unit of bus occupancy."""

    kind: JobKind
    core_id: int
    seq: int
    req: Optional[CoherenceRequest] = None
    wb: Optional[Writeback] = None

    def __post_init__(self) -> None:
        if self.kind in (JobKind.DATA, JobKind.BROADCAST) and self.req is None:
            raise ValueError(f"{self.kind.name} job requires a request")
        if self.kind == JobKind.WRITEBACK and self.wb is None:
            raise ValueError("WRITEBACK job requires a Writeback")

    def __repr__(self) -> str:
        body: Union[CoherenceRequest, Writeback, None] = self.req or self.wb
        return f"BusJob({self.kind.name}, c{self.core_id}, {body})"
