"""The lock-step multi-config engine: amortise one trace across configs.

The seed and ``fast_path`` engines pay one Python event (or at best one
inlined ``try_access``) per memory access.  A parameter sweep or GA
generation re-simulates the *same trace* under hundreds of timer/protocol
configurations, so almost all of that per-access work is redundant: the
trace decode is identical, and long runs of consecutive private-cache
hits are fully determined by a tiny amount of per-config cache state.

This module exploits that structure without giving up bit-identical
results:

* **Shared decode planes.**  All configs of a batch share one
  :class:`~repro.sim.trace.DecodedTrace` per ``(trace, line_bytes)``:
  line addresses, set indices and hit-chain due prefixes are computed
  once (struct-of-arrays, one flat numpy plane per field).

* **Mirrors + vectorised classification.**  Each config/core keeps two
  flat arrays indexed by cache set: the line address the set can serve
  for loads, and for stores (``-1`` when it cannot).  Whether access
  ``k`` hits is then a pure array lookup, so a whole *run* of future
  hits is classified with a handful of numpy ops instead of one Python
  call per access.

* **Hit-run plans with lazy commit.**  When a core would issue, the
  engine scans forward to the first miss and schedules **one** kernel
  event at the miss's cycle (the *boundary*).  The hits in between stay
  pending and are committed (stats, golden-value writes) no later than
  any observer could read their effects: before any engine step that
  reads a line's version/dirty bit, and whenever a snoop actually
  changes the core's classification.  Because a running core's
  classification can only *degrade* through remote activity (any
  improvement requires its own request, i.e. a waiting core), planned
  hits stay hits until such a change — at which point the plan is
  re-scanned from the first uncommitted access.

* **A lineage-ordered dispatcher.**  Boundary events of different cores
  can collide on a cycle; the seed engine orders them by heap insertion
  order, which the plans no longer reproduce.  A per-system dispatcher
  executes all same-cycle boundaries in exactly the seed's order by
  comparing event *lineages*: each planned access's virtual ancestor
  chain (previous accesses at their due cycles) down to the real kernel
  event that resumed the chain (a fill, or simulation start).

Configs the plans cannot represent are *peeled*: they run on the
ordinary per-event engine inside the same batch (see
:func:`lockstep_unsupported_reason`).  Everything else — bus
arbitration, coherence requests, timers, write-backs, DRAM — runs
through the unmodified engine/kernel machinery, which is what makes the
cycle-level equivalence argument local to the hit path.
"""

from __future__ import annotations

import heapq
from functools import cmp_to_key
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.params import SimConfig
from repro.sim.cache import CacheLine
from repro.sim.core import Core
from repro.sim.engine import ProtocolEngine
from repro.sim.kernel import (
    _NO_LIMIT,
    PHASE_ARBITRATE,
    PHASE_CORE,
    EventKernel,
    SimulationLimitError,
)
from repro.sim.messages import CoherenceRequest
from repro.sim.private_cache import EvictedLine, PrivateCache
from repro.sim.protocols import get_protocol
from repro.sim.stats import SystemStats
from repro.sim.system import System, run_simulation
from repro.sim.trace import Trace

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.fi.plan import FaultPlan

__all__ = [
    "LockstepSystem",
    "LockstepUnsupported",
    "lockstep_unsupported_reason",
    "run_lockstep_batch",
    "run_simulation_lockstep",
    "batch_stats",
]


class LockstepUnsupported(RuntimeError):
    """The configuration needs a slow path the plans cannot represent."""


def lockstep_unsupported_reason(config: SimConfig) -> Optional[str]:
    """Why ``config`` must be peeled to the per-event engine (or None).

    The lock-step hit plans assume the standard MSI-family hit predicate
    and defer per-hit side effects; configs that observe individual hits
    run on the ordinary engine instead.
    """
    if not get_protocol(config.protocol).uses_standard_hits():
        return f"protocol {config.protocol!r} does not use the standard hit set"
    if config.check_coherence:
        return "check_coherence reads the oracle on every access"
    return None


# --------------------------------------------------------------------- kernel


class LockstepKernel(EventKernel):
    """Event kernel that remembers the key of the executing event.

    The coordinator needs the current ``(cycle, phase, seq)`` to anchor
    resume chains and to pick phase-correct commit horizons.  Kept as a
    subclass so the seed engine's hot loop stays untouched.
    """

    __slots__ = ("current_key",)

    def __init__(self) -> None:
        super().__init__()
        #: Key of the event being executed: ``(cycle, phase, seq)``.
        self.current_key: Tuple[int, int, int] = (-1, -1, 0)

    def run(self, max_cycles, until):
        """Seed-identical event loop that records ``current_key`` per pop."""
        self._max_cycles = max_cycles
        heap = self._heap
        pop = heapq.heappop
        try:
            while heap and not until():
                cycle, phase, seq, fn, args = pop(heap)
                if cycle > max_cycles:
                    raise SimulationLimitError(
                        f"simulation exceeded max_cycles={max_cycles}"
                    )
                self._now = cycle
                self.current_key = (cycle, phase, seq)
                fn(*args)
        finally:
            self._max_cycles = _NO_LIMIT
        return self._now


# ----------------------------------------------------------------- hit scans


def _first_divergence(
    lines: np.ndarray,
    sets: np.ndarray,
    store_mask: np.ndarray,
    load_line: np.ndarray,
    store_line: np.ndarray,
    start: int,
    limit: int,
) -> int:
    """Index of the first access in ``[start, limit)`` the mirrors miss.

    Chunked with a growing window: short runs (the common case after a
    miss) only pay for a small slice, long hit runs amortise into a few
    large vector ops.
    """
    i = start
    step = 64
    while i < limit:
        j = i + step
        if j > limit:
            j = limit
        st = sets[i:j]
        expect = np.where(store_mask[i:j], store_line[st], load_line[st])
        mism = (expect != lines[i:j]).nonzero()[0]
        if mism.size:
            return i + int(mism[0])
        i = j
        if step < 4096:
            step <<= 1
    return limit


# --------------------------------------------------------------------- cores


class LockstepCore(Core):
    """Replay core whose issue scheduling goes through hit-run plans.

    The core logic itself (miss handling, run-ahead bookkeeping, resume
    cases) is inherited unchanged; only the two scheduling seams
    (``_schedule_issue`` / ``_schedule_ra``) are redirected to the
    coordinator, and ``on_fill`` materialises the pending run-ahead plan
    into the exact ``_ra_next`` / ``_ra_blocked`` / ``_ra_exhausted``
    state the inherited resume logic expects.

    ``fast_path`` is forced off: inline hit retirement would advance the
    clock past boundaries the coordinator tracks outside the heap, and
    the plans batch hits far more aggressively anyway.
    """

    __slots__ = (
        "coord",
        "_due_prefix",
        "_sets",
        # main-plan state (valid while _plan_active)
        "_plan_active",
        "_plan_s",
        "_plan_c",
        "_plan_b",
        "_plan_due0",
        "_plan_epoch",
        # lineage chain of the current uninterrupted retire sequence
        "_chain_start",
        "_chain_due0",
        "_chain_anchor",
        "_resume_pending",
        # run-ahead plan state (valid while _rap_active)
        "_rap_active",
        "_rap_s",
        "_rap_c",
        "_rap_due0",
        "_rap_bound",
        "_rap_block",
        "_rap_limit",
        "_rap_final",
    )

    def __init__(self, coord: "LockstepCoordinator", **kwargs) -> None:
        kwargs["fast_path"] = False
        super().__init__(**kwargs)
        self.coord = coord
        self._due_prefix = self._decoded.due_prefix(self.hit_latency)
        self._sets = self._decoded.set_index(coord.num_sets)
        self._plan_active = False
        self._plan_s = 0
        self._plan_c = 0
        self._plan_b = 0
        self._plan_due0 = 0
        self._plan_epoch = 0
        self._chain_start = 0
        self._chain_due0 = 0
        self._chain_anchor: Tuple[int, int, int] = (-1, -1, self.core_id)
        self._resume_pending = False
        self._rap_active = False
        self._rap_s = 0
        self._rap_c = 0
        self._rap_due0 = 0
        self._rap_bound = 0
        self._rap_block = False
        self._rap_limit = 0
        self._rap_final: Optional[Tuple[str, int, int]] = None

    def start(self) -> None:
        """Begin replay with a fresh retire chain anchored before cycle 0."""
        self._chain_start = 0
        self._chain_due0 = self._gaps[0] if self.num_entries else 0
        self._chain_anchor = (-1, -1, self.core_id)
        super().start()

    def _schedule_issue(self, index: int, at: int) -> None:
        if self._resume_pending:
            # First schedule after a fill: a new retire chain starts here,
            # anchored at the real kernel event that caused the resume.
            self._resume_pending = False
            self._chain_start = index
            self._chain_due0 = at
            self._chain_anchor = self.system.kernel.current_key
        self.coord.plan_main(self, index, at)

    def _schedule_ra(self, index: int, at: int) -> None:
        self.coord.plan_ra(self, index, at)

    def on_fill(self, fill_cycle: int) -> None:
        """Resume after a fill: settle run-ahead, refresh the mirror row."""
        coord = self.coord
        coord.materialize_ra(self, fill_cycle)
        if self._miss_index is not None:
            # The filled/upgraded line may have changed state immediately
            # before this callback (upgrades mutate in place, with no
            # cache.fill notification); refresh its mirror row so the
            # resume plan scans against current reality.
            coord.refresh_mirror(self.core_id, self._line_addrs[self._miss_index])
        self._resume_pending = True
        try:
            super().on_fill(fill_cycle)
        finally:
            self._resume_pending = False


# ---------------------------------------------------------------- coordinator


class LockstepCoordinator:
    """Owns the per-core mirrors, plans and the boundary dispatcher."""

    __slots__ = (
        "system",
        "kernel",
        "num_sets",
        "_mask",
        "_num_cores",
        "_slots",
        "_load",
        "_store",
        "_cores",
        "_actions",
        "_disp_at",
        "_core_stats",
        "_hit_latency",
        "_perform_write",
        # telemetry
        "plans",
        "replans",
        "touches",
        "touch_changes",
        "committed_hits",
        "dispatches",
        "order_fallbacks",
    )

    def __init__(self, system: "LockstepSystem") -> None:
        self.system = system
        self.kernel: LockstepKernel = system.kernel
        array = system.caches[0].array
        self._mask = array._set_mask
        self.num_sets = self._mask + 1
        self._num_cores = system.config.num_cores
        self._slots = [cache.array._lines for cache in system.caches]
        self._load = [
            np.full(self.num_sets, -1, dtype=np.int64)
            for _ in range(self._num_cores)
        ]
        self._store = [
            np.full(self.num_sets, -1, dtype=np.int64)
            for _ in range(self._num_cores)
        ]
        self._cores: List[LockstepCore] = []
        #: Pending boundary actions: core_id -> (cycle, index, plan_epoch).
        self._actions: Dict[int, Tuple[int, int, int]] = {}
        self._disp_at: Optional[int] = None
        self._core_stats = None
        self._hit_latency = system.config.latencies.hit
        # Lock-step peels check_coherence configs, so golden writes can
        # skip the oracle's per-store check dispatch entirely.
        self._perform_write = system.oracle.unchecked_writer()
        self.plans = 0
        self.replans = 0
        self.touches = 0
        self.touch_changes = 0
        self.committed_hits = 0
        self.dispatches = 0
        self.order_fallbacks = 0

    def add_core(self, core: LockstepCore) -> None:
        """Register a replay core (called while the system wires itself)."""
        self._cores.append(core)

    def finalize(self) -> None:
        """Grab references built after construction (stats arrive last)."""
        self._core_stats = self.system.stats.cores

    # ---------------------------------------------------------------- horizon

    def _phase_horizon(self) -> int:
        """Latest due cycle whose planned hits the current event may see.

        From an EFFECT (or CORE) event at cycle ``t``, a planned hit due
        at ``t`` has *not yet* run in the per-event engine (CORE follows
        EFFECT); from an ARBITRATE event it has.
        """
        cycle, phase, _seq = self.kernel.current_key
        return cycle if phase == PHASE_ARBITRATE else cycle - 1

    # ------------------------------------------------------------------ plans

    def plan_main(self, core: LockstepCore, index: int, at: int) -> None:
        """Plan the hit run starting at ``index`` issuing at ``at``.

        Schedules exactly one dispatcher action at the first miss (or at
        the final access, whose retirement finishes the core).
        """
        dec = core._decoded
        n = dec.n
        cid = core.core_id
        m = _first_divergence(
            dec.lines_np, core._sets, dec.store_mask,
            self._load[cid], self._store[cid], index, n,
        )
        b = m if m < n else n - 1
        prefix = core._due_prefix
        due_b = at if b == index else at + int(prefix[b] - prefix[index])
        core._plan_active = True
        core._plan_s = index
        core._plan_c = index
        core._plan_b = b
        core._plan_due0 = at
        core._plan_epoch += 1
        self.plans += 1
        self._register(core, due_b, b)

    def plan_ra(self, core: LockstepCore, index: int, at: int) -> None:
        """Plan the run-ahead window opened by the miss at ``_miss_index``."""
        dec = core._decoded
        cid = core.core_id
        miss = core._miss_index
        limit = miss + core.runahead_window + 1
        if limit > dec.n:
            limit = dec.n
        m = _first_divergence(
            dec.lines_np, core._sets, dec.store_mask,
            self._load[cid], self._store[cid], index, limit,
        )
        core._rap_active = True
        core._rap_s = index
        core._rap_c = index
        core._rap_due0 = at
        core._rap_limit = limit
        core._rap_block = m < limit
        core._rap_bound = m if m < limit else limit
        core._rap_final = None
        self.plans += 1

    # ---------------------------------------------------------------- commits

    def _commit_main(self, core: LockstepCore, horizon: Optional[int]) -> None:
        """Retire planned hits due up to ``horizon`` (None: the whole run)."""
        c = core._plan_c
        b = core._plan_b
        if c >= b:
            return
        prefix = core._due_prefix
        base = core._plan_due0 - int(prefix[core._plan_s])
        if horizon is None:
            kmax = b
        else:
            kmax = c + int(
                np.searchsorted(prefix[c:b], horizon - base, side="right")
            )
            if kmax <= c:
                return
        self._apply_stores(core, c, kmax)
        stats = self._core_stats[core.core_id]
        cnt = kmax - c
        stats.hits += cnt
        stats.total_memory_latency += cnt * self._hit_latency
        self.committed_hits += cnt
        core.pos = kmax
        core._plan_c = kmax

    def _commit_ra(self, core: LockstepCore, horizon: int) -> None:
        """Retire run-ahead hits due up to ``horizon``; finalise outcomes.

        A block decision is final once its due cycle passes (the seed
        engine never retries a blocked run-ahead); exhaustion is final
        once the last in-window hit retires.
        """
        c = core._rap_c
        e = core._rap_bound
        prefix = core._due_prefix
        base = core._rap_due0 - int(prefix[core._rap_s])
        if c < e:
            kmax = c + int(
                np.searchsorted(prefix[c:e], horizon - base, side="right")
            )
            if kmax > c:
                self._apply_stores(core, c, kmax)
                stats = self._core_stats[core.core_id]
                cnt = kmax - c
                stats.hits += cnt
                stats.runahead_hits += cnt
                stats.total_memory_latency += cnt * self._hit_latency
                self.committed_hits += cnt
                core._rap_c = kmax
                c = kmax
        if c == e and core._rap_final is None:
            if core._rap_block:
                since = base + int(prefix[e])
                if since <= horizon:
                    core._rap_final = ("blocked", e, since)
            else:
                retire = base + int(prefix[e - 1]) + self._hit_latency
                core._rap_final = ("exhausted", e, retire)

    def _apply_stores(self, core: LockstepCore, c: int, kmax: int) -> None:
        """Apply deferred golden-value writes of stores in ``[c, kmax)``."""
        sp = core._decoded.store_pos
        a = int(np.searchsorted(sp, c))
        z = int(np.searchsorted(sp, kmax))
        if z <= a:
            return
        slots = self._slots[core.core_id]
        mask = self._mask
        lines = core._line_addrs
        pw = self._perform_write
        for k in sp[a:z]:
            pw(slots[lines[k] & mask])

    def commit_core(self, core_id: int) -> None:
        """Flush planned effects an engine step is about to observe.

        Called before any read of a line's ``version``/``dirty`` (data
        handover, owner spill, back-invalidation, victim eviction).
        """
        core = self._cores[core_id]
        if core._plan_active:
            self._commit_main(core, self._phase_horizon())
        elif core._rap_active and core._rap_final is None:
            self._commit_ra(core, self._phase_horizon())

    def materialize_ra(self, core: LockstepCore, fill_cycle: int) -> None:
        """Resolve the run-ahead plan into the core's resume fields.

        Mirrors exactly what the per-event engine's cancelled run-ahead
        events would have left behind at ``fill_cycle``: hits due before
        the fill are retired, a block/exhaust decision due before the
        fill is final, and anything else becomes the pending ``_ra_next``
        probe the inherited ``on_fill`` resumes from.
        """
        if not core._rap_active:
            return
        self._commit_ra(core, fill_cycle - 1)
        fin = core._rap_final
        if fin is not None:
            kind, idx, cyc = fin
            if kind == "blocked":
                core._ra_blocked = (idx, cyc)
            else:
                core._ra_exhausted = (idx, cyc)
            core._ra_next = None
        else:
            c = core._rap_c
            prefix = core._due_prefix
            due = core._rap_due0 + int(prefix[c] - prefix[core._rap_s])
            core._ra_next = (c, due)
        core._rap_active = False
        core._rap_final = None

    # ---------------------------------------------------------------- touches

    def _mirror_values(self, core_id: int, set_idx: int) -> Tuple[int, int]:
        """(load, store) mirror values for one cache set, from reality.

        Same predicate as the inlined hit path: a valid, non-frozen line
        serves loads; only a Modified one serves stores.
        """
        slot = self._slots[core_id][set_idx]
        state = slot.state
        if state and not (slot.handover_ready and not slot.pending_is_downgrade):
            la = slot.line_addr
            return la, (la if state == 2 else -1)
        return -1, -1

    def refresh_mirror(self, core_id: int, line_addr: int) -> None:
        """Unconditionally sync one mirror row (resume path: no plans live)."""
        s = line_addr & self._mask
        la, ls = self._mirror_values(core_id, s)
        self._load[core_id][s] = la
        self._store[core_id][s] = ls

    def touch_line(self, core_id: int, line_addr: int) -> None:
        """Re-check one core's classification of ``line_addr``'s set.

        Cheap when nothing observable changed (the common case); on a
        real change, pending hits up to the phase horizon are committed
        and the live plan is re-scanned against the new mirror.
        """
        self.touches += 1
        s = line_addr & self._mask
        la, ls = self._mirror_values(core_id, s)
        load = self._load[core_id]
        store = self._store[core_id]
        if load[s] == la and store[s] == ls:
            return
        self.touch_changes += 1
        core = self._cores[core_id]
        if core._plan_active:
            self._commit_main(core, self._phase_horizon())
        elif core._rap_active and core._rap_final is None:
            self._commit_ra(core, self._phase_horizon())
        load[s] = la
        store[s] = ls
        self._replan(core)

    def touch_all(self, line_addr: int) -> None:
        """Refresh every core's mirror row for ``line_addr`` (bus snoops)."""
        for core_id in range(self._num_cores):
            self.touch_line(core_id, line_addr)

    def _replan(self, core: LockstepCore) -> None:
        """Re-scan the live plan after a classification change.

        Dues are unaffected (they only depend on the trace), so the main
        plan restarts from its first uncommitted access at its original
        due; only the boundary can move (and only earlier — remote
        activity never improves a running core's classification).
        """
        if core._plan_active:
            self.replans += 1
            c = core._plan_c
            prefix = core._due_prefix
            at = core._plan_due0 + int(prefix[c] - prefix[core._plan_s])
            self.plan_main(core, c, at)
        elif core._rap_active and core._rap_final is None:
            self.replans += 1
            dec = core._decoded
            cid = core.core_id
            limit = core._rap_limit
            m = _first_divergence(
                dec.lines_np, core._sets, dec.store_mask,
                self._load[cid], self._store[cid], core._rap_c, limit,
            )
            core._rap_block = m < limit
            core._rap_bound = m if m < limit else limit

    # ------------------------------------------------------------- dispatcher

    def _register(self, core: LockstepCore, cycle: int, index: int) -> None:
        self._actions[core.core_id] = (cycle, index, core._plan_epoch)
        if self._disp_at is None or cycle < self._disp_at:
            self._disp_at = cycle
            self.kernel.schedule(cycle, PHASE_CORE, self._dispatch)

    def _dispatch(self) -> None:
        """Run every boundary action due now, in the seed engine's order."""
        kernel = self.kernel
        now = kernel._now
        if self._disp_at is not None and self._disp_at <= now:
            self._disp_at = None
        actions = self._actions
        while True:
            due = []
            for cid in list(actions):
                cyc, idx, epoch = actions[cid]
                core = self._cores[cid]
                if epoch != core._plan_epoch:
                    del actions[cid]  # superseded by a replan
                    continue
                if cyc == now:
                    due.append((core, idx))
            if not due:
                break
            if len(due) > 1:
                due.sort(key=cmp_to_key(self._issue_order))
            for core, idx in due:
                ent = actions.get(core.core_id)
                if (
                    ent is None
                    or ent[2] != core._plan_epoch
                    or ent[0] != now
                ):
                    continue
                del actions[core.core_id]
                self.dispatches += 1
                self._commit_main(core, None)
                core._plan_active = False
                Core._issue(core, core._epoch, idx)
            # A self-healed boundary may have registered a follow-up at
            # `now` (possible only with a zero hit latency); loop again.
        if actions:
            nxt = min(ent[0] for ent in actions.values())
            if self._disp_at is None or nxt < self._disp_at:
                self._disp_at = nxt
                kernel.schedule(nxt, PHASE_CORE, self._dispatch)

    # ----------------------------------------------------- same-cycle ordering

    def _ancestor(
        self, core: LockstepCore, j: int
    ) -> Optional[Tuple[int, int, Optional[int]]]:
        """The ``(cycle, phase, seq)`` key of ancestor access ``j``.

        Accesses inside the current retire chain are virtual CORE-phase
        events at their due cycle (seq unknown — they were never pushed);
        one step past the chain start sits the real anchor event that
        resumed the chain (seq known).
        """
        start = core._chain_start
        if j >= start:
            prefix = core._due_prefix
            due = core._chain_due0 + int(prefix[j] - prefix[start])
            return (due, PHASE_CORE, None)
        if j == start - 1:
            return core._chain_anchor
        return None

    def _issue_order(self, a, b) -> int:
        """Seed-engine pop order of two same-cycle boundary actions.

        In the per-event engine every access is a heap event pushed
        during its predecessor's execution, so FIFO ties resolve by the
        predecessors' execution order — recursively, until the lineages
        reach real anchor events whose seq decides.  Walking both
        lineages level by level reproduces that order without ever
        having pushed the events.
        """
        core_a, ia = a
        core_b, ib = b
        ja = ia - 1
        jb = ib - 1
        while True:
            ka = self._ancestor(core_a, ja)
            kb = self._ancestor(core_b, jb)
            if ka is None or kb is None:
                self.order_fallbacks += 1
                return -1 if core_a.core_id < core_b.core_id else 1
            if ka[0] != kb[0] or ka[1] != kb[1]:
                return -1 if (ka[0], ka[1]) < (kb[0], kb[1]) else 1
            sa = ka[2]
            sb = kb[2]
            if sa is not None and sb is not None:
                if sa != sb:
                    return -1 if sa < sb else 1
                self.order_fallbacks += 1
                return -1 if core_a.core_id < core_b.core_id else 1
            if sa is not None or sb is not None:
                # A real anchor colliding with a virtual CORE event at the
                # same (cycle, phase) cannot happen (anchors are EFFECT
                # fills or start sentinels); counted defensively.
                self.order_fallbacks += 1
                return -1 if core_a.core_id < core_b.core_id else 1
            ja -= 1
            jb -= 1

    def telemetry(self) -> Dict[str, int]:
        """Plan/replan/touch/commit counters for this system's run."""
        return {
            "plans": self.plans,
            "replans": self.replans,
            "touches": self.touches,
            "touch_changes": self.touch_changes,
            "committed_hits": self.committed_hits,
            "dispatches": self.dispatches,
            "order_fallbacks": self.order_fallbacks,
        }


# ------------------------------------------------------------ cache & engine


class MirroredPrivateCache(PrivateCache):
    """Private cache that keeps the coordinator's mirrors in sync.

    Only the two mutation entry points the engine does not already route
    through wrapped methods are hooked: fills (which also evict the
    victim of the same set) and DRAM-side back-invalidations.
    """

    __slots__ = ("coord",)

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.coord: Optional[LockstepCoordinator] = None

    def fill(self, line_addr, state, cycle, version):
        """Install a line, then refresh its mirror row (victim included)."""
        victim = super().fill(line_addr, state, cycle, version)
        if self.coord is not None:
            self.coord.touch_line(self.core_id, line_addr)
        return victim

    def back_invalidate(self, line_addr: int) -> Optional[EvictedLine]:
        """Inclusion-driven invalidation: commit pending stores first."""
        coord = self.coord
        if coord is not None:
            # The eviction snapshot reads version/dirty: flush pending
            # store effects of this core first.
            coord.commit_core(self.core_id)
        evicted = super().back_invalidate(line_addr)
        if coord is not None and evicted is not None:
            coord.touch_line(self.core_id, line_addr)
        return evicted


class LockstepEngine(ProtocolEngine):
    """Protocol engine wrapped with commit/touch notifications.

    Commits run *before* any step that reads a line's version or dirty
    bit (the deferred store effects must be visible); touches run
    *after* every step that can change a line's hit classification.
    """

    def __init__(self, system: "LockstepSystem") -> None:
        super().__init__(system)
        self.coord = system.coord

    def refresh_snoop(self, line_addr: int) -> None:
        """Snoop refresh; every core's classification of the line may move."""
        super().refresh_snoop(line_addr)
        self.coord.touch_all(line_addr)

    def on_timer_expiry(self, core_id: int, line_addr: int, generation: int) -> None:
        """Countdown expiry can release the line: refresh the owner's row."""
        super().on_timer_expiry(core_id, line_addr, generation)
        self.coord.touch_line(core_id, line_addr)

    def _evaluate_request(self, req, copies, owner) -> bool:
        changed = super()._evaluate_request(req, copies, owner)
        # Upgrades and self-invalidations mutate the requester's copy.
        self.coord.touch_line(req.core_id, req.line_addr)
        return changed

    def _spill_owner(self, ocache: PrivateCache, ocopy: CacheLine) -> None:
        line_addr = ocopy.line_addr
        self.coord.commit_core(ocache.core_id)
        super()._spill_owner(ocache, ocopy)
        self.coord.touch_line(ocache.core_id, line_addr)

    def on_data_done(self, req: CoherenceRequest) -> None:
        """Data transfer completes: commit the source, settle the requester."""
        coord = self.coord
        src = req.source
        if src is not None and src >= 0:
            # The transfer reads the source copy's version (and its fate
            # depends on dirty): flush the source's pending store hits.
            coord.commit_core(src)
        # The fill may evict a victim (version/dirty snapshot) and always
        # resumes the requester: settle its run-ahead plan against
        # pre-fill reality before the fill improves it.
        coord.commit_core(req.core_id)
        coord.materialize_ra(self.system.cores[req.core_id], self.kernel.now)
        super().on_data_done(req)
        if src is not None and src >= 0:
            coord.touch_line(src, req.line_addr)


# -------------------------------------------------------------------- system


class LockstepSystem(System):
    """A :class:`System` whose cores issue through lock-step hit plans.

    Drop-in for supported configs: same construction signature (minus
    the engine flags), same :meth:`run` contract, bit-identical stats.
    """

    def __init__(
        self,
        config: SimConfig,
        traces: Sequence[Trace],
        record_latencies: bool = False,
    ) -> None:
        reason = lockstep_unsupported_reason(config)
        if reason is not None:
            raise LockstepUnsupported(reason)
        self.coord: Optional[LockstepCoordinator] = None
        super().__init__(
            config, traces, record_latencies=record_latencies, fast_path=False
        )
        self.coord.finalize()

    # Factory seams --------------------------------------------------------

    def _make_kernel(self) -> EventKernel:
        return LockstepKernel()

    def _make_cache(self, core_id: int) -> PrivateCache:
        return MirroredPrivateCache(
            core_id, self.config.l1, self.config.core_config(core_id).theta,
            protocol=self.protocol,
        )

    def _make_engine(self) -> ProtocolEngine:
        self.coord = LockstepCoordinator(self)
        for cache in self.caches:
            cache.coord = self.coord
        return LockstepEngine(self)

    def _make_core(self, core_id: int, trace: Trace, fast_path: bool) -> Core:
        core = LockstepCore(
            coord=self.coord,
            core_id=core_id,
            trace=trace,
            system=self,
            line_bytes=self.config.l1.line_bytes,
            hit_latency=self.config.latencies.hit,
            runahead_window=self.config.runahead_window,
        )
        self.coord.add_core(core)
        return core

    def run(self) -> SystemStats:
        """Run to completion; refuses per-hit subscribers (see peel rules)."""
        if self.events.hot:
            raise LockstepUnsupported(
                "per-hit event subscribers require the per-event engine"
            )
        return super().run()


# --------------------------------------------------------------------- batch

#: Cumulative process-local batch counters (surfaced by sweep telemetry).
batch_stats = {"batches": 0, "configs": 0, "peeled": 0}


def run_simulation_lockstep(
    config: SimConfig,
    traces: Sequence[Trace],
    record_latencies: bool = False,
    fault_plan: Optional["FaultPlan"] = None,
) -> SystemStats:
    """Run one config on the lock-step engine (peeling when unsupported)."""
    if fault_plan is not None or lockstep_unsupported_reason(config):
        return run_simulation(
            config, traces, record_latencies=record_latencies,
            fast_path=True, fault_plan=fault_plan,
        )
    return LockstepSystem(config, traces, record_latencies=record_latencies).run()


def run_lockstep_batch(
    configs: Sequence[SimConfig],
    traces: Sequence[Trace],
    record_latencies: bool = False,
    fault_plans: Optional[Sequence[Optional["FaultPlan"]]] = None,
) -> List[SystemStats]:
    """Evaluate every config against one shared trace set.

    The batch shares all decode planes (lists, set indices, due
    prefixes) across configs; configs the plans cannot represent are
    peeled to the per-event engine transparently.  Results are exactly
    ``[run_simulation(cfg, traces, ...) for cfg in configs]``.
    """
    if fault_plans is not None and len(fault_plans) != len(configs):
        raise ValueError("fault_plans must align with configs")
    batch_stats["batches"] += 1
    results: List[SystemStats] = []
    for i, config in enumerate(configs):
        plan = fault_plans[i] if fault_plans is not None else None
        batch_stats["configs"] += 1
        if plan is not None or lockstep_unsupported_reason(config):
            batch_stats["peeled"] += 1
            results.append(
                run_simulation(
                    config, traces, record_latencies=record_latencies,
                    fast_path=True, fault_plan=plan,
                )
            )
        else:
            results.append(
                LockstepSystem(
                    config, traces, record_latencies=record_latencies
                ).run()
            )
    return results
