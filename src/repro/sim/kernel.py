"""A minimal deterministic discrete-event kernel.

The simulator is *cycle-accurate* in the sense that every event happens at
an integer cycle and same-cycle events are ordered by an explicit phase:

* :data:`PHASE_EFFECT` — hardware state updates (bus transaction
  completion, timer expiry, DRAM fill).
* :data:`PHASE_CORE` — core-side activity (issuing accesses, run-ahead).
* :data:`PHASE_ARBITRATE` — bus arbitration, which must observe every
  state change of the cycle.

Ties within a phase break on scheduling order, which makes runs fully
deterministic.
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Tuple

PHASE_EFFECT = 0
PHASE_CORE = 1
PHASE_ARBITRATE = 2


class SimulationLimitError(RuntimeError):
    """Raised when a run exceeds its ``max_cycles`` safety valve."""


class EventKernel:
    """Priority-queue event loop with integer cycles and phases."""

    def __init__(self) -> None:
        self._heap: List[Tuple[int, int, int, Callable[[], None]]] = []
        self._now = 0
        self._seq = 0

    @property
    def now(self) -> int:
        """The current cycle."""
        return self._now

    @property
    def pending_events(self) -> int:
        return len(self._heap)

    def schedule(self, cycle: int, phase: int, fn: Callable[[], None]) -> None:
        """Schedule ``fn`` to run at ``cycle`` in ``phase``."""
        if cycle < self._now:
            raise ValueError(
                f"cannot schedule in the past (now={self._now}, cycle={cycle})"
            )
        self._seq += 1
        heapq.heappush(self._heap, (cycle, phase, self._seq, fn))

    def run(self, max_cycles: int, until: Callable[[], bool]) -> int:
        """Process events until ``until()`` holds or the heap drains.

        Returns the final cycle.  Raises :class:`SimulationLimitError` when
        the clock passes ``max_cycles``.
        """
        while self._heap and not until():
            cycle, phase, _seq, fn = heapq.heappop(self._heap)
            if cycle > max_cycles:
                raise SimulationLimitError(
                    f"simulation exceeded max_cycles={max_cycles}"
                )
            self._now = cycle
            fn()
        return self._now
