"""A minimal deterministic discrete-event kernel.

The simulator is *cycle-accurate* in the sense that every event happens at
an integer cycle and same-cycle events are ordered by an explicit phase:

* :data:`PHASE_EFFECT` — hardware state updates (bus transaction
  completion, timer expiry, DRAM fill).
* :data:`PHASE_CORE` — core-side activity (issuing accesses, run-ahead).
* :data:`PHASE_ARBITRATE` — bus arbitration, which must observe every
  state change of the cycle.

Ties within a phase break on scheduling order, which makes runs fully
deterministic.

Events are stored as ``(cycle, phase, seq, fn, args)`` tuples: callers
pass a (typically bound-method) callable plus positional arguments
instead of allocating a fresh closure per event, which keeps the
per-event cost on the simulator's hot path low.  :meth:`advance_if_next`
additionally lets a core retire consecutive private-cache hits *inline*
(without any heap traffic) whenever the event it would schedule is
provably the next one to run — see :mod:`repro.sim.core` and
``docs/performance.md`` for the equivalence argument.
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Tuple

PHASE_EFFECT = 0
PHASE_CORE = 1
PHASE_ARBITRATE = 2

#: Default ``max_cycles`` guard used outside :meth:`EventKernel.run`.
_NO_LIMIT = 1 << 62


class SimulationLimitError(RuntimeError):
    """Raised when a run exceeds its ``max_cycles`` safety valve."""


class EventKernel:
    """Priority-queue event loop with integer cycles and phases."""

    __slots__ = ("_heap", "_now", "_seq", "_max_cycles")

    def __init__(self) -> None:
        self._heap: List[Tuple[int, int, int, Callable, tuple]] = []
        self._now = 0
        self._seq = 0
        self._max_cycles = _NO_LIMIT

    @property
    def now(self) -> int:
        """The current cycle."""
        return self._now

    @property
    def pending_events(self) -> int:
        return len(self._heap)

    def schedule(self, cycle: int, phase: int, fn: Callable, *args) -> None:
        """Schedule ``fn(*args)`` to run at ``cycle`` in ``phase``."""
        if cycle < self._now:
            raise ValueError(
                f"cannot schedule in the past (now={self._now}, cycle={cycle})"
            )
        self._seq += 1
        heapq.heappush(self._heap, (cycle, phase, self._seq, fn, args))

    def advance_if_next(self, cycle: int, phase: int) -> bool:
        """Advance the clock to ``(cycle, phase)`` if no event precedes it.

        Returns True (and sets :attr:`now` to ``cycle``) exactly when an
        event scheduled now at ``(cycle, phase)`` would be the next one
        popped from the heap: the caller may then run its handler inline
        instead of scheduling it, with cycle-identical results.  A heap
        entry at the *same* ``(cycle, phase)`` was scheduled earlier and
        therefore wins the FIFO tie, so it refuses the fast path too.
        """
        heap = self._heap
        if heap:
            head = heap[0]
            if head[0] < cycle or (head[0] == cycle and head[1] <= phase):
                return False
        if cycle > self._max_cycles:
            raise SimulationLimitError(
                f"simulation exceeded max_cycles={self._max_cycles}"
            )
        self._now = cycle
        return True

    def run(self, max_cycles: int, until: Callable[[], bool]) -> int:
        """Process events until ``until()`` holds or the heap drains.

        Returns the final cycle.  Raises :class:`SimulationLimitError` when
        the clock passes ``max_cycles``.
        """
        self._max_cycles = max_cycles
        heap = self._heap
        pop = heapq.heappop
        try:
            while heap and not until():
                cycle, _phase, _seq, fn, args = pop(heap)
                if cycle > max_cycles:
                    raise SimulationLimitError(
                        f"simulation exceeded max_cycles={max_cycles}"
                    )
                self._now = cycle
                fn(*args)
        finally:
            self._max_cycles = _NO_LIMIT
        return self._now
