"""Bound-tightness experiment: how close can Equation 1 get?

The proof of Lemma 1 describes the worst case: a request is broadcast
directly after every other core has issued a store to the same line, so
the line snakes through all co-runners — each holding it for its timer
period — before reaching the requester.  This module *constructs* that
scenario and measures how much of the analytical bound is actually
exercised, which quantifies the pessimism of the analysis (an
experiment the paper implies but does not show).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.params import MSI_THETA, cohort_config
from repro.analysis.wcl import wcl_miss
from repro.sim.system import System
from repro.sim.trace import Trace
from repro.workloads.synthetic import LINE


@dataclass(frozen=True)
class TightnessResult:
    """Measured worst-case latency against the Equation-1 bound."""

    thetas: List[int]
    target_core: int
    measured: int
    bound: int

    @property
    def tightness(self) -> float:
        """Fraction of the analytical bound actually observed (≤ 1)."""
        return self.measured / self.bound


def adversarial_traces(
    num_cores: int, target_core: int, line_index: int = 1
) -> List[Trace]:
    """The Lemma-1 scenario: everyone stores one line, the target last.

    Co-runners issue their stores at cycle 0; the target issues just
    after their broadcasts have left, so its request queues behind the
    full handover chain.
    """
    traces = []
    for core in range(num_cores):
        gap = 8 * num_cores if core == target_core else 0
        traces.append(
            Trace.from_arrays([gap], [1], [line_index * LINE])
        )
    return traces


def measure_tightness(
    thetas: Sequence[int], target_core: int = 0
) -> TightnessResult:
    """Run the adversarial scenario and compare with Equation 1."""
    thetas = list(thetas)
    if thetas[target_core] == MSI_THETA:
        pass  # the target's own protocol does not affect its bound
    config = cohort_config(thetas)
    traces = adversarial_traces(len(thetas), target_core)
    system = System(config, traces, record_latencies=True)
    stats = system.run()
    measured = stats.core(target_core).max_request_latency
    bound = wcl_miss(thetas, target_core, config.latencies.slot_width)
    return TightnessResult(
        thetas=thetas,
        target_core=target_core,
        measured=measured,
        bound=bound,
    )
