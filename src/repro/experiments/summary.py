"""One-shot reproduction driver: every table and figure in one report.

``cohort all`` (and the EXPERIMENTS.md refresh workflow) use this to run
the complete evaluation — Table I/II, the three Figure-5 panels, the
three Figure-6 panels and Figure 7 — and produce a single text report
plus a machine-readable dict.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.experiments.mode_switch import run_mode_switch_experiment
from repro.experiments.performance import run_performance_experiment
from repro.experiments.related_work import render_table_i
from repro.experiments.report import format_table
from repro.experiments.wcml import FIG5_CONFIGS, run_wcml_experiment
from repro.opt import GAConfig

DEFAULT_SUITE = ["fft", "lu", "radix", "barnes"]


@dataclass
class ReproductionReport:
    """Everything the paper's evaluation section reports, regenerated."""

    sections: List[str] = field(default_factory=list)
    metrics: Dict[str, float] = field(default_factory=dict)
    wall_seconds: float = 0.0

    def add(self, title: str, body: str) -> None:
        """Append one titled report section."""
        bar = "=" * max(8, len(title))
        self.sections.append(f"{bar}\n{title}\n{bar}\n{body}")

    def render(self) -> str:
        """The full report as text, with the metric footer."""
        footer = (
            f"\ncomplete reproduction run in {self.wall_seconds:.1f}s; "
            f"key metrics: "
            + ", ".join(f"{k}={v:.2f}" for k, v in sorted(self.metrics.items()))
        )
        return "\n\n".join(self.sections) + footer


def run_everything(
    suite: Optional[Sequence[str]] = None,
    scale: float = 1.0,
    seed: int = 0,
    ga_config: Optional[GAConfig] = None,
) -> ReproductionReport:
    """Run the full evaluation; takes a few minutes at scale 1.0."""
    suite = list(suite or DEFAULT_SUITE)
    ga = ga_config or GAConfig(population_size=20, generations=15, seed=1)
    report = ReproductionReport()
    started = time.perf_counter()

    report.add("Table I — related-work challenge matrix", render_table_i())

    for config_name, critical in FIG5_CONFIGS.items():
        blocks = []
        for name in suite:
            exp = run_wcml_experiment(
                name, critical, scale=scale, seed=seed, ga_config=ga
            )
            blocks.append(exp.to_table())
            ratio = exp.bound_ratio("PENDULUM", "CoHoRT")
            blocks.append(f"PENDULUM/CoHoRT bound ratio: {ratio:.2f}x")
            report.metrics[f"fig5_{config_name}_{name}_pend_ratio"] = ratio
        report.add(f"Figure 5 ({config_name}) — total WCML",
                   "\n\n".join(blocks))

    for config_name, critical in FIG5_CONFIGS.items():
        perf = run_performance_experiment(
            suite, critical, scale=scale, seed=seed, ga_config=ga
        )
        report.add(
            f"Figure 6 ({config_name}) — normalised execution time",
            perf.to_table(),
        )
        for system in ("CoHoRT", "PCC", "PENDULUM"):
            report.metrics[f"fig6_{config_name}_{system.lower()}"] = (
                perf.average_slowdown(system)
            )

    mode_exp = run_mode_switch_experiment(
        scale=scale, seed=seed, ga_config=ga, run_measured=False
    )
    report.add(
        "Table II — per-mode timers & Figure 7 — mode switching",
        str(mode_exp.mode_table) + "\n\n" + mode_exp.to_table(),
    )
    report.metrics["fig7_stages_recovered"] = sum(
        1 for s in mode_exp.stages if s.ok_with and not s.ok_without
    )

    report.wall_seconds = time.perf_counter() - started
    return report


def quick_sanity_table(report: ReproductionReport) -> str:
    """A compact pass/fail view of the paper's headline shapes."""
    checks = []
    for key in sorted(report.metrics):
        value = report.metrics[key]
        if key.startswith("fig5_") and key.endswith("_pend_ratio"):
            checks.append([key, value, value > 1.0])
        elif key.startswith("fig6_") and key.endswith("_cohort"):
            checks.append([key, value, value < 1.35])
        elif key.startswith("fig6_") and key.endswith("_pendulum"):
            checks.append([key, value, value > 1.1])
        elif key == "fig7_stages_recovered":
            checks.append([key, value, value >= 2])
    return format_table(["metric", "value", "shape holds"], checks)
