"""The mode-switching experiment of Figure 7 (and Table II).

Four cores with criticality levels 4, 3, 2, 1 run the fft benchmark.
The optimization engine fills the Mode-Switch LUTs offline, once per
mode (Table II).  At run time, the requirement of the most-critical
core c₀ tightens in three stages (by ~1.5× and then ~1.8×, as in the
paper); the controller escalates the operating mode, degrading the
lower-criticality cores to MSI **without suspending them**, until c₀'s
analytical bound fits again.  Without mode switching the system is
unschedulable from stage 2 on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.params import LatencyParams, cohort_config
from repro.analysis import build_profiles
from repro.experiments.report import format_table
from repro.mcs import ModeSwitchController, Task, TaskSet, UnschedulableError
from repro.opt import GAConfig, ModeTable, OptimizationEngine
from repro.sim.system import run_simulation
from repro.workloads import splash_traces


@dataclass
class Stage:
    """One requirement stage of the Figure-7 experiment."""

    index: int
    requirement_c0: float
    #: Static system stuck at mode 1.
    bound_without: float
    ok_without: bool
    #: Adaptive system: the mode the controller selected (None if even the
    #: highest mode fails).
    mode_with: Optional[int]
    bound_with: Optional[float]
    ok_with: bool
    degraded: List[int] = field(default_factory=list)


@dataclass
class ModeSwitchExperiment:
    """Results of the Figure-7 experiment."""

    benchmark: str
    criticalities: List[int]
    mode_table: ModeTable
    stages: List[Stage] = field(default_factory=list)
    #: Measured c0 total memory latency with run-time switching enabled,
    #: and with the static mode-1 configuration, for the same traces.
    measured_c0_adaptive: Optional[int] = None
    measured_c0_static: Optional[int] = None

    def to_table(self) -> str:
        """Render the per-stage adaptation results as a table."""
        rows = []
        for s in self.stages:
            rows.append(
                [
                    f"stage {s.index}",
                    s.requirement_c0,
                    s.bound_without,
                    s.ok_without,
                    s.mode_with if s.mode_with is not None else "-",
                    s.bound_with,
                    s.ok_with,
                ]
            )
        return format_table(
            [
                "stage",
                "Γ_0 requirement",
                "c0 bound (no switch)",
                "schedulable",
                "mode (switch)",
                "c0 bound (switch)",
                "schedulable",
            ],
            rows,
            title=f"Mode-switch adaptation on {self.benchmark} "
            f"(criticalities {self.criticalities})",
        )


def run_mode_switch_experiment(
    benchmark: str = "fft",
    criticalities: Sequence[int] = (4, 3, 2, 1),
    stage_shrink: Sequence[float] = (1.5, 1.8),
    headroom: float = 1.05,
    scale: float = 1.0,
    seed: int = 0,
    ga_config: Optional[GAConfig] = None,
    run_measured: bool = True,
) -> ModeSwitchExperiment:
    """Reproduce Figure 7.

    Stage 1's requirement is set ``headroom`` above c₀'s mode-1 bound (so
    the initial system is schedulable); each later stage divides it by
    the next ``stage_shrink`` factor, mirroring the paper's ~1.5× and
    ~1.8× reductions.
    """
    criticalities = list(criticalities)
    num_cores = len(criticalities)
    traces = splash_traces(benchmark, num_cores, scale=scale, seed=seed)
    latencies = LatencyParams()
    l1 = cohort_config([1] * num_cores).l1
    profiles = build_profiles(traces, l1)

    engine = OptimizationEngine(
        profiles, latencies, ga_config or GAConfig(seed=1)
    )
    modes = sorted(set(range(1, max(criticalities) + 1)))
    mode_table = engine.optimize_modes(
        criticalities, {m: [None] * num_cores for m in modes}
    )

    tasks = TaskSet(
        tuple(
            Task(name=f"tau_{i}", criticality=l, trace=traces[i])
            for i, l in enumerate(criticalities)
        )
    )
    controller = ModeSwitchController(tasks, mode_table, profiles, latencies)

    experiment = ModeSwitchExperiment(
        benchmark=benchmark,
        criticalities=criticalities,
        mode_table=mode_table,
    )

    bound_mode1 = controller.bounds_at(1)[0].wcml
    requirement = bound_mode1 * headroom
    shrinks = [1.0] + list(stage_shrink)
    chosen_modes: List[int] = []
    for idx, shrink in enumerate(shrinks, start=1):
        requirement = requirement / shrink
        requirements = [requirement] + [None] * (num_cores - 1)
        ok_without = bound_mode1 <= requirement
        try:
            decision = controller.required_mode(requirements)
            stage = Stage(
                index=idx,
                requirement_c0=requirement,
                bound_without=bound_mode1,
                ok_without=ok_without,
                mode_with=decision.mode,
                bound_with=decision.bounds[0].wcml,
                ok_with=True,
                degraded=decision.degraded,
            )
            chosen_modes.append(decision.mode)
        except UnschedulableError:
            stage = Stage(
                index=idx,
                requirement_c0=requirement,
                bound_without=bound_mode1,
                ok_without=ok_without,
                mode_with=None,
                bound_with=None,
                ok_with=False,
            )
            chosen_modes.append(max(mode_table.modes))
        experiment.stages.append(stage)

    if run_measured:
        experiment.measured_c0_adaptive = _measured_c0(
            traces, criticalities, mode_table, chosen_modes, controller
        )
        experiment.measured_c0_static = _measured_c0(
            traces, criticalities, mode_table, [1] * len(chosen_modes), controller
        )
    return experiment


def _measured_c0(
    traces,
    criticalities,
    mode_table: ModeTable,
    stage_modes: List[int],
    controller: ModeSwitchController,
) -> int:
    """Run the simulator with mode switches applied at stage boundaries."""
    initial = stage_modes[0]
    config = cohort_config(
        mode_table.thetas[initial],
        criticalities=criticalities,
        critical=[True] * len(criticalities),
    )
    from repro.sim.system import System  # local import to avoid a cycle

    system = System(config, traces)
    controller.program_luts(system)
    # Estimate the total span from a dry static run, then split into stages.
    probe = run_simulation(config, traces)
    span = max(1, probe.final_cycle)
    num_stages = len(stage_modes)
    for k, mode in enumerate(stage_modes):
        if k == 0:
            continue
        at = (span * k) // num_stages
        system.kernel.schedule(
            at, system.PHASE_EFFECT, lambda m=mode: system.switch_mode(m)
        )
    stats = system.run()
    return stats.cores[0].total_memory_latency
