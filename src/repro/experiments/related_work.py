"""Table I: predictable-coherence works versus the four MCS challenges.

A structured rendition of the paper's qualitative comparison.  The
"support" levels follow the paper's wording: plain snoop-based works
address none of the challenges, PENDULUM/CARP offer *limited*
criticality support (effectively two levels), PENDULUM* is
requirement-aware only, and CoHoRT addresses all four.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.experiments.report import format_table

CHALLENGES = (
    "heterogeneity",
    "criticality",
    "requirements",
    "mode_switching",
)


@dataclass(frozen=True)
class WorkCategory:
    """One row of Table I."""

    name: str
    references: str
    heterogeneity: str
    criticality: str
    requirements: str
    mode_switching: str

    def support(self, challenge: str) -> str:
        """The row's support level for one of the four challenges."""
        if challenge not in CHALLENGES:
            raise KeyError(f"unknown challenge {challenge!r}")
        return getattr(self, challenge)


TABLE_I: List[WorkCategory] = [
    WorkCategory(
        name="predictable snoop/time coherence",
        references="[10]-[12], [15], [21], [22], [24]",
        heterogeneity="No",
        criticality="No",
        requirements="No",
        mode_switching="No",
    ),
    WorkCategory(
        name="PENDULUM / CARP",
        references="[13], [16]",
        heterogeneity="No",
        criticality="Limited",
        requirements="No",
        mode_switching="No",
    ),
    WorkCategory(
        name="PENDULUM*",
        references="[17]",
        heterogeneity="No",
        criticality="No",
        requirements="Yes",
        mode_switching="No",
    ),
    WorkCategory(
        name="CoHoRT",
        references="this work",
        heterogeneity="Yes",
        criticality="Yes",
        requirements="Optimized",
        mode_switching="Yes",
    ),
]


def render_table_i() -> str:
    """Render Table I as an aligned text table."""
    rows = [
        [
            w.name,
            w.references,
            w.heterogeneity,
            w.criticality,
            w.requirements,
            w.mode_switching,
        ]
        for w in TABLE_I
    ]
    return format_table(
        [
            "work category",
            "refs",
            "Ch.1 heterogeneity",
            "Ch.2 criticality",
            "Ch.3 requirements",
            "Ch.4 mode switch",
        ],
        rows,
        title="Table I: predictable coherence works vs MCS challenges",
    )


def cohort_addresses_all() -> bool:
    """Sanity property: CoHoRT is the only row covering every challenge."""
    full = [
        w
        for w in TABLE_I
        if all(w.support(c) not in ("No", "Limited") for c in CHALLENGES)
    ]
    return len(full) == 1 and full[0].name == "CoHoRT"
