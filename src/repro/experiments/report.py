"""Plain-text reporting helpers shared by the experiment drivers.

The benchmark harness regenerates the paper's tables and figures as
aligned ASCII tables (plus machine-readable dicts), so every
``pytest benchmarks/`` run prints the same rows/series the paper reports.
"""

from __future__ import annotations

import json
import math
from typing import Any, Dict, List, Optional, Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    title: Optional[str] = None,
) -> str:
    """Render an aligned ASCII table.

    Numeric columns (every value an int/float or ``None``, bools
    excluded) are right-justified, header included; text columns are
    left-justified — mixing ``ljust`` headers with ``rjust`` cells left
    text columns ragged.
    """
    cells = [[_fmt(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    numeric = []
    for i in range(len(headers)):
        values = [row[i] for row in rows if i < len(row)]
        numeric.append(
            bool(values)
            and all(
                v is None
                or (isinstance(v, (int, float)) and not isinstance(v, bool))
                for v in values
            )
            and any(v is not None for v in values)
        )

    def just(text: str, column: int) -> str:
        w = widths[column]
        return text.rjust(w) if numeric[column] else text.ljust(w)

    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(" | ".join(just(h, i) for i, h in enumerate(headers)))
    lines.append("-+-".join("-" * w for w in widths))
    for row in cells:
        lines.append(" | ".join(just(c, i) for i, c in enumerate(row)))
    return "\n".join(lines)


def _fmt(value: Any) -> str:
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if math.isinf(value):
            return "unbounded"
        if value >= 1000:
            return f"{value:,.0f}"
        return f"{value:.2f}"
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)


def geomean(values: Sequence[float]) -> float:
    """Geometric mean (the paper's 'on average ...x' aggregations)."""
    vals = [v for v in values if math.isfinite(v)]
    if not vals:
        return math.inf
    if any(v <= 0 for v in vals):
        raise ValueError("geomean requires positive values")
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


def ratio_summary(
    numerators: Sequence[float], denominators: Sequence[float]
) -> float:
    """Geometric mean of pairwise ratios, ignoring unbounded entries."""
    ratios = [
        n / d
        for n, d in zip(numerators, denominators)
        if math.isfinite(n) and math.isfinite(d) and d > 0
    ]
    return geomean(ratios) if ratios else math.inf


def bar_chart(
    items: Sequence[tuple],
    width: int = 50,
    log_scale: bool = True,
    title: Optional[str] = None,
) -> str:
    """Render ``(label, value)`` pairs as horizontal ASCII bars.

    ``log_scale=True`` mirrors the paper's Figure 5 (logarithmic vertical
    axis).  Infinite values render as an unbounded marker.
    """
    finite = [v for _l, v in items if math.isfinite(v) and v > 0]
    if not finite:
        return (title + "\n" if title else "") + "(no finite values)"
    vmax = max(finite)
    vmin = min(finite)
    label_w = max(len(str(l)) for l, _v in items)
    lines: List[str] = []
    if title:
        lines.append(title)
    for label, value in items:
        if not math.isfinite(value):
            bar = "∞" * width
            shown = "unbounded"
        else:
            if log_scale:
                lo = math.log(max(vmin, 1.0) / 2.0)
                hi = math.log(vmax)
                frac = 1.0 if hi <= lo else (
                    (math.log(max(value, 1.0)) - lo) / (hi - lo)
                )
            else:
                frac = value / vmax
            n = max(1, int(round(frac * width)))
            bar = "█" * min(n, width)
            shown = f"{value:,.0f}"
        lines.append(f"{str(label).rjust(label_w)} | {bar} {shown}")
    return "\n".join(lines)


def dump_json(path: str, payload: Dict[str, Any]) -> None:
    """Persist experiment output for later inspection.

    Non-finite floats are stored as strings so the files stay strict
    JSON (``Infinity`` is not valid JSON).
    """

    def sanitise(obj: Any) -> Any:
        if isinstance(obj, float) and not math.isfinite(obj):
            return str(obj)
        if isinstance(obj, dict):
            return {k: sanitise(v) for k, v in obj.items()}
        if isinstance(obj, (list, tuple)):
            return [sanitise(v) for v in obj]
        return obj

    with open(path, "w") as fh:
        json.dump(sanitise(payload), fh, indent=2, allow_nan=False)
