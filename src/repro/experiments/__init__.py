"""Experiment drivers that regenerate the paper's tables and figures."""

from repro.experiments.mode_switch import (
    ModeSwitchExperiment,
    Stage,
    run_mode_switch_experiment,
)
from repro.experiments.performance import (
    PerformanceExperiment,
    PerformanceResult,
    run_performance_benchmark,
    run_performance_experiment,
)
from repro.experiments.related_work import (
    TABLE_I,
    cohort_addresses_all,
    render_table_i,
)
from repro.experiments.report import (
    bar_chart,
    dump_json,
    format_table,
    geomean,
    ratio_summary,
)
from repro.experiments.summary import (
    ReproductionReport,
    quick_sanity_table,
    run_everything,
)
from repro.experiments.tightness import (
    TightnessResult,
    adversarial_traces,
    measure_tightness,
)
from repro.experiments.wcml import (
    FIG5_CONFIGS,
    PENDULUM_THETA,
    SystemWCML,
    WCMLExperiment,
    optimize_cohort_thetas,
    run_wcml_experiment,
    run_wcml_sweep,
)

__all__ = [
    "ModeSwitchExperiment",
    "Stage",
    "run_mode_switch_experiment",
    "PerformanceExperiment",
    "PerformanceResult",
    "run_performance_benchmark",
    "run_performance_experiment",
    "TABLE_I",
    "cohort_addresses_all",
    "render_table_i",
    "bar_chart",
    "dump_json",
    "format_table",
    "geomean",
    "ratio_summary",
    "TightnessResult",
    "adversarial_traces",
    "measure_tightness",
    "ReproductionReport",
    "quick_sanity_table",
    "run_everything",
    "FIG5_CONFIGS",
    "PENDULUM_THETA",
    "SystemWCML",
    "WCMLExperiment",
    "optimize_cohort_thetas",
    "run_wcml_experiment",
    "run_wcml_sweep",
]
