"""The total-WCML experiments of Figure 5 (and footnote 1).

For one benchmark and one criticality configuration, runs the three
systems the paper compares —

* **CoHoRT**: critical cores timed with GA-optimized timers, non-critical
  cores on MSI, RROF arbitration;
* **PCC**: predictable MSI (transfers via the LLC), RROF;
* **PENDULUM**: global timer on critical cores, TDM arbitration with
  slack-only service for non-critical cores —

and reports, per core, the *experimental* WCML (measured total memory
latency, the solid bars) next to the *analytical* WCML bound (the T
bars).  Non-critical cores under PENDULUM are unbounded.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.params import (
    LatencyParams,
    SimConfig,
    cohort_config,
    pcc_config,
    pendulum_config,
)
from repro.analysis import (
    build_profiles,
    cohort_bounds,
    pcc_bounds,
    pendulum_bounds,
)
from repro.experiments.report import bar_chart, format_table, ratio_summary
from repro.opt import GAConfig, OptimizationEngine
from repro.runner import SweepRunner
from repro.sim.trace import Trace
from repro.workloads import splash_traces

#: The global timer value used for the PENDULUM baseline.
PENDULUM_THETA = 300


@dataclass
class SystemWCML:
    """One system's per-core WCML results."""

    name: str
    experimental: List[int]
    analytical: List[float]
    thetas: Optional[List[int]] = None

    def within_bounds(self) -> bool:
        """Every measured WCML at or below its analytical bound."""
        return all(
            e <= a
            for e, a in zip(self.experimental, self.analytical)
            if math.isfinite(a)
        )


@dataclass
class WCMLExperiment:
    """Results of one Figure-5 panel for one benchmark."""

    benchmark: str
    critical: List[bool]
    systems: List[SystemWCML] = field(default_factory=list)

    def system(self, name: str) -> SystemWCML:
        """The named system's results."""
        for s in self.systems:
            if s.name == name:
                return s
        raise KeyError(name)

    def bound_ratio(self, name_a: str, name_b: str) -> float:
        """Geomean of per-core analytical-bound ratios a/b (critical cores)."""
        a = self.system(name_a)
        b = self.system(name_b)
        num = [x for x, c in zip(a.analytical, self.critical) if c]
        den = [x for x, c in zip(b.analytical, self.critical) if c]
        return ratio_summary(num, den)

    def to_table(self) -> str:
        """Render the panel as a table (experimental vs analytical)."""
        rows = []
        for s in self.systems:
            for core_id, (exp, bound) in enumerate(
                zip(s.experimental, s.analytical)
            ):
                rows.append(
                    [
                        s.name,
                        f"c{core_id}" + ("(Cr)" if self.critical[core_id] else ""),
                        exp,
                        bound,
                    ]
                )
        return format_table(
            ["system", "core", "experimental WCML", "analytical WCML"],
            rows,
            title=f"[{self.benchmark}] critical={self.critical}",
        )

    def to_dict(self) -> dict:
        """Machine-readable form (see report.dump_json)."""
        return {
            "benchmark": self.benchmark,
            "critical": self.critical,
            "systems": [
                {
                    "name": s.name,
                    "experimental": list(s.experimental),
                    "analytical": list(s.analytical),
                    "thetas": s.thetas,
                }
                for s in self.systems
            ],
        }

    def to_chart(self) -> str:
        """Figure-5-style log-scale bars: experimental vs analytical."""
        items = []
        for s in self.systems:
            for core_id in range(len(self.critical)):
                items.append(
                    (f"{s.name}/c{core_id} exp", float(s.experimental[core_id]))
                )
                items.append(
                    (f"{s.name}/c{core_id} bound", float(s.analytical[core_id]))
                )
        return bar_chart(
            items,
            title=f"[{self.benchmark}] WCML (log scale), "
            f"critical={self.critical}",
        )


def optimize_cohort_thetas(
    traces: Sequence[Trace],
    critical: Sequence[bool],
    config: SimConfig,
    ga_config: Optional[GAConfig] = None,
    requirements: Optional[Sequence[Optional[float]]] = None,
) -> List[int]:
    """GA-optimized timer vector for a CoHoRT deployment."""
    profiles = build_profiles(traces, config.l1, config.latencies.hit)
    engine = OptimizationEngine(
        profiles, config.latencies, ga_config or GAConfig(seed=1)
    )
    result = engine.optimize(timed=list(critical), requirements=requirements)
    return result.thetas


def run_wcml_experiment(
    benchmark: str,
    critical: Sequence[bool],
    scale: float = 1.0,
    seed: int = 0,
    ga_config: Optional[GAConfig] = None,
    perfect_llc: bool = True,
    pendulum_theta: int = PENDULUM_THETA,
    runner: Optional[SweepRunner] = None,
    jobs: int = 1,
) -> WCMLExperiment:
    """Run one Figure-5 panel for one benchmark.

    The three system simulations are independent, so they go through a
    :class:`~repro.runner.SweepRunner` (pass ``runner`` to share its
    result cache across panels, or just ``jobs`` for a private one).
    """
    critical = list(critical)
    num_cores = len(critical)
    traces = splash_traces(benchmark, num_cores, scale=scale, seed=seed)
    base_kwargs = dict(perfect_llc=perfect_llc)
    latencies = LatencyParams()
    profiles = build_profiles(traces, cohort_config([1] * num_cores).l1)
    experiment = WCMLExperiment(benchmark=benchmark, critical=critical)
    if runner is None:
        runner = SweepRunner(jobs=jobs, cache_dir=None)

    # The GA (serial, memoized) must run first: its timers define the
    # CoHoRT configuration of the batch.
    engine = OptimizationEngine(
        profiles, latencies, ga_config or GAConfig(seed=1)
    )
    opt = engine.optimize(timed=critical)

    pend_cfg = pendulum_config(critical, theta=pendulum_theta, **base_kwargs)
    sims = runner.run_systems(
        {
            "CoHoRT": cohort_config(
                opt.thetas, critical=critical, **base_kwargs
            ),
            "PCC": pcc_config(num_cores, **base_kwargs),
            "PENDULUM": pend_cfg,
        },
        traces,
    )

    def measured(name: str) -> List[int]:
        return [c["total_memory_latency"] for c in sims[name]["cores"]]

    experiment.systems.append(
        SystemWCML(
            name="CoHoRT",
            experimental=measured("CoHoRT"),
            analytical=[
                b.wcml
                for b in cohort_bounds(opt.thetas, profiles, latencies)
            ],
            thetas=opt.thetas,
        )
    )
    experiment.systems.append(
        SystemWCML(
            name="PCC",
            experimental=measured("PCC"),
            analytical=[b.wcml for b in pcc_bounds(profiles, latencies)],
        )
    )
    experiment.systems.append(
        SystemWCML(
            name="PENDULUM",
            experimental=measured("PENDULUM"),
            analytical=[
                b.wcml
                for b in pendulum_bounds(
                    critical, pendulum_theta, profiles, latencies
                )
            ],
            thetas=pend_cfg.thetas,
        )
    )
    return experiment


def run_wcml_sweep(
    benchmarks: Sequence[str],
    critical: Sequence[bool],
    scale: float = 1.0,
    seed: int = 0,
    ga_config: Optional[GAConfig] = None,
    perfect_llc: bool = True,
    pendulum_theta: int = PENDULUM_THETA,
    runner: Optional[SweepRunner] = None,
    jobs: int = 1,
) -> List[WCMLExperiment]:
    """Figure-5 panels for several benchmarks, sharing one runner/cache."""
    if runner is None:
        runner = SweepRunner(jobs=jobs, cache_dir=None)
    return [
        run_wcml_experiment(
            name,
            critical,
            scale=scale,
            seed=seed,
            ga_config=ga_config,
            perfect_llc=perfect_llc,
            pendulum_theta=pendulum_theta,
            runner=runner,
        )
        for name in benchmarks
    ]


#: The three criticality configurations of Figure 5.
FIG5_CONFIGS: Dict[str, List[bool]] = {
    "all_cr": [True, True, True, True],
    "2cr_2ncr": [True, True, False, False],
    "1cr_3ncr": [True, False, False, False],
}
