"""The average-case performance experiment of Figure 6.

Overall system execution time of CoHoRT / PCC / PENDULUM normalised to
the COTS baseline (standard MSI with an FCFS arbiter).  The paper's
headline numbers for the all-critical configuration are average
slowdowns of 1.03× (CoHoRT), 1.13× (PCC) and 1.50× (PENDULUM, whose TDM
arbiter wastes idle slots).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.params import (
    cohort_config,
    msi_fcfs_config,
    pcc_config,
    pendulum_config,
    pmsi_config,
)
from repro.analysis import build_profiles
from repro.experiments.report import format_table, geomean
from repro.experiments.wcml import PENDULUM_THETA
from repro.opt import GAConfig, OptimizationEngine
from repro.runner import SweepRunner
from repro.workloads import splash_traces


@dataclass
class PerformanceResult:
    """Normalised execution time of each system for one benchmark."""

    benchmark: str
    critical: List[bool]
    #: system name → absolute execution time (cycles).
    execution_time: Dict[str, int] = field(default_factory=dict)
    #: system name → fraction of cycles the shared bus was occupied.
    bus_utilization: Dict[str, float] = field(default_factory=dict)

    def normalised(self) -> Dict[str, float]:
        """Execution times divided by the MSI-FCFS baseline."""
        base = self.execution_time["MSI-FCFS"]
        return {
            name: cycles / base for name, cycles in self.execution_time.items()
        }


@dataclass
class PerformanceExperiment:
    """One Figure-6 panel: several benchmarks, one criticality config."""

    critical: List[bool]
    results: List[PerformanceResult] = field(default_factory=list)

    def average_slowdown(self, system: str) -> float:
        """Geomean normalised execution time of one system."""
        return geomean([r.normalised()[system] for r in self.results])

    def to_table(self) -> str:
        """Render the Figure-6 panel as a table (with geomeans)."""
        systems = list(self.results[0].execution_time) if self.results else []
        rows = []
        for r in self.results:
            norm = r.normalised()
            rows.append([r.benchmark] + [norm[s] for s in systems])
        if self.results:
            rows.append(
                ["geomean"] + [self.average_slowdown(s) for s in systems]
            )
        return format_table(
            ["benchmark"] + systems,
            rows,
            title=f"Execution time normalised to MSI-FCFS, critical={self.critical}",
        )

    def to_dict(self) -> dict:
        """Machine-readable form (see report.dump_json)."""
        return {
            "critical": self.critical,
            "results": [
                {
                    "benchmark": r.benchmark,
                    "execution_time": dict(r.execution_time),
                    "normalised": r.normalised(),
                    "bus_utilization": dict(r.bus_utilization),
                }
                for r in self.results
            ],
        }

    def utilization_table(self) -> str:
        """Shared-bus occupancy per system: makes PENDULUM's idle-slot
        waste (low utilisation *and* long runtime) directly visible."""
        systems = list(self.results[0].bus_utilization) if self.results else []
        rows = [
            [r.benchmark] + [f"{r.bus_utilization[s]:.0%}" for s in systems]
            for r in self.results
        ]
        return format_table(
            ["benchmark"] + systems,
            rows,
            title="Shared-bus utilisation",
        )


def run_performance_benchmark(
    benchmark: str,
    critical: Sequence[bool],
    scale: float = 1.0,
    seed: int = 0,
    ga_config: Optional[GAConfig] = None,
    perfect_llc: bool = True,
    pendulum_theta: int = PENDULUM_THETA,
    runner: Optional[SweepRunner] = None,
    jobs: int = 1,
    include_pmsi: bool = False,
) -> PerformanceResult:
    """Execution time of all four systems on one benchmark.

    The simulations are independent and run as one
    :class:`~repro.runner.SweepRunner` batch (the GA supplying CoHoRT's
    timers runs first, since its result shapes the batch).
    ``include_pmsi`` adds a fifth column: the registry-selected
    PMSI-style predictable baseline (``protocol="pmsi"``).
    """
    critical = list(critical)
    num_cores = len(critical)
    traces = splash_traces(benchmark, num_cores, scale=scale, seed=seed)
    result = PerformanceResult(benchmark=benchmark, critical=critical)
    kwargs = dict(perfect_llc=perfect_llc)
    if runner is None:
        runner = SweepRunner(jobs=jobs, cache_dir=None)

    base_cfg = msi_fcfs_config(num_cores, **kwargs)
    profiles = build_profiles(traces, base_cfg.l1)
    engine = OptimizationEngine(
        profiles, base_cfg.latencies, ga_config or GAConfig(seed=1)
    )
    thetas = engine.optimize(timed=critical).thetas

    systems = {
        "MSI-FCFS": base_cfg,
        "CoHoRT": cohort_config(thetas, critical=critical, **kwargs),
        "PCC": pcc_config(num_cores, **kwargs),
        "PENDULUM": pendulum_config(
            critical, theta=pendulum_theta, **kwargs
        ),
    }
    if include_pmsi:
        systems["PMSI"] = pmsi_config(num_cores, **kwargs)
    sims = runner.run_systems(systems, traces)
    for name, sim in sims.items():
        result.execution_time[name] = sim["execution_time"]
        result.bus_utilization[name] = sim["bus_utilization"]
    return result


def run_performance_experiment(
    benchmarks: Sequence[str],
    critical: Sequence[bool],
    scale: float = 1.0,
    seed: int = 0,
    ga_config: Optional[GAConfig] = None,
    perfect_llc: bool = True,
    runner: Optional[SweepRunner] = None,
    jobs: int = 1,
    include_pmsi: bool = False,
) -> PerformanceExperiment:
    """One Figure-6 panel across a benchmark list (one shared runner)."""
    if runner is None:
        runner = SweepRunner(jobs=jobs, cache_dir=None)
    experiment = PerformanceExperiment(critical=list(critical))
    for name in benchmarks:
        experiment.results.append(
            run_performance_benchmark(
                name,
                critical,
                scale=scale,
                seed=seed,
                ga_config=ga_config,
                perfect_llc=perfect_llc,
                runner=runner,
                include_pmsi=include_pmsi,
            )
        )
    return experiment
