"""The timer-optimization problem of Section V.

Variables: the timer vector Θ (one gene per *timed* core; MSI cores are
fixed at ``θ = -1``).  Objective: the total average worst-case memory
latency per access across cores.  Constraint C1: every timed core's task
meets its WCML requirement Γ.  The Θ→M_hit relationship is captured by
the static cache analysis (:class:`repro.analysis.IsolationProfile`)
used as a black box, exactly as Figure 2a describes.

Constraints are handled with a penalty method: infeasible points pay a
multiplicative penalty proportional to their relative violation, so the
GA is drawn towards the feasible region while still exploring.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.params import MSI_THETA, LatencyParams
from repro.analysis.cache_analysis import IsolationProfile
from repro.analysis.wcl import wcl_miss
from repro.analysis.wcml import CoreBound, wcml_snoop, wcml_timed


@dataclass(frozen=True)
class Evaluation:
    """Objective/constraint breakdown of one candidate Θ."""

    thetas: List[int]
    objective: float
    violation: float
    bounds: List[CoreBound]

    @property
    def feasible(self) -> bool:
        return self.violation == 0.0


class TimerProblem:
    """One optimization instance: which cores are timed, and their Γs."""

    #: Multiplier applied to relative constraint violations.
    PENALTY_WEIGHT = 10.0

    def __init__(
        self,
        profiles: Sequence[IsolationProfile],
        latencies: LatencyParams,
        timed: Sequence[bool],
        requirements: Optional[Sequence[Optional[float]]] = None,
        wcl_bucket: Optional[int] = None,
        objective_cores: Optional[Sequence[int]] = None,
        weights: Optional[Sequence[float]] = None,
    ) -> None:
        """``objective_cores`` selects whose average WCML is minimised.

        ``weights`` (one non-negative value per core, default uniform)
        skews the objective towards specific cores — e.g. weighting a
        throughput-oriented task higher buys it a larger timer at the
        co-runners' expense, without touching the hard constraint C1.

        Section V's objective sums over *all* cores (the default): MSI
        co-runners contribute through Equation 3, which keeps timers
        moderate when non-critical cores share the bus.  Section VI's
        per-mode flow instead "takes all τ_j with l_j ≥ l as inputs" —
        degraded tasks are not optimisation inputs at all — which
        :meth:`repro.opt.engine.OptimizationEngine.optimize_modes`
        selects by passing the timed cores here.
        """
        n = len(profiles)
        if len(timed) != n:
            raise ValueError("one timed flag per core required")
        if requirements is None:
            requirements = [None] * n
        if len(requirements) != n:
            raise ValueError("one requirement slot per core required")
        if not any(timed):
            raise ValueError("at least one core must be timed to optimize")
        self.profiles = list(profiles)
        self.latencies = latencies
        self.timed = list(timed)
        self.requirements = list(requirements)
        if objective_cores is None:
            objective_cores = list(range(n))
        objective_cores = sorted(set(int(c) for c in objective_cores))
        if not objective_cores or not all(0 <= c < n for c in objective_cores):
            raise ValueError("objective_cores must be a non-empty core subset")
        self.objective_cores = objective_cores
        self._objective_set = set(objective_cores)
        if weights is None:
            weights = [1.0] * n
        if len(weights) != n:
            raise ValueError("one weight per core required")
        if any(w < 0 for w in weights):
            raise ValueError("weights must be non-negative")
        total_weight = sum(weights[c] for c in objective_cores)
        if total_weight <= 0:
            raise ValueError(
                "at least one objective core must have positive weight"
            )
        self.weights = [float(w) for w in weights]
        self._weight_norm = total_weight
        #: Analysis results are memoised per (θ, WCL); bucketing the WCL
        #: *upwards* keeps the analysis sound while making the memo hit.
        self.wcl_bucket = (
            latencies.slot_width if wcl_bucket is None else wcl_bucket
        )
        if self.wcl_bucket < 1:
            raise ValueError("wcl_bucket must be positive")

    # -- geometry of the search space ----------------------------------------

    @property
    def num_cores(self) -> int:
        return len(self.profiles)

    @property
    def timed_cores(self) -> List[int]:
        return [i for i, t in enumerate(self.timed) if t]

    def gene_bounds(self) -> List[tuple]:
        """(1, θ_sat) per timed core — the variable bounds of Section V.

        θ_sat is computed against the *largest possible* co-runner WCL
        (every other timed core at its own saturation would be circular;
        a single pass with the all-MSI lower-bound WCL is used instead,
        which only widens the search space upwards — harmless).
        """
        sw = self.latencies.slot_width
        base_wcl = self.num_cores * sw
        return [
            (1, max(1, self.profiles[i].theta_sat(self._bucket(base_wcl))))
            for i in self.timed_cores
        ]

    def _bucket(self, wcl: float) -> int:
        b = self.wcl_bucket
        return int(-(-wcl // b) * b)  # ceil to the bucket grid

    # -- evaluation ---------------------------------------------------------------

    def expand(self, genes: Sequence[int]) -> List[int]:
        """Genes (timed cores only) → full per-core timer vector."""
        timed_cores = self.timed_cores
        if len(genes) != len(timed_cores):
            raise ValueError(
                f"expected {len(timed_cores)} genes, got {len(genes)}"
            )
        thetas = [MSI_THETA] * self.num_cores
        for core, gene in zip(timed_cores, genes):
            gene = int(gene)
            if gene < 1:
                raise ValueError("timer genes must be >= 1")
            thetas[core] = gene
        return thetas

    def evaluate(self, genes: Sequence[int]) -> Evaluation:
        """Objective + constraint C1 for one candidate gene vector."""
        thetas = self.expand(genes)
        sw = self.latencies.slot_width
        hit_latency = self.latencies.hit
        bounds: List[CoreBound] = []
        objective = 0.0
        violation = 0.0
        for i, profile in enumerate(self.profiles):
            wcl = wcl_miss(thetas, i, sw)
            lam = profile.num_accesses
            if thetas[i] == MSI_THETA:
                wcml = wcml_snoop(lam, wcl)
                bound = CoreBound(i, wcml, wcl, 0, lam)
            else:
                counts = profile.analyze(thetas[i], self._bucket(wcl))
                wcml = wcml_timed(counts.m_hit, counts.m_miss, wcl, hit_latency)
                bound = CoreBound(i, wcml, wcl, counts.m_hit, counts.m_miss)
            bounds.append(bound)
            if i in self._objective_set:
                objective += self.weights[i] * bound.average_per_access
            gamma = self.requirements[i]
            if gamma is not None and thetas[i] != MSI_THETA and wcml > gamma:
                violation += (wcml - gamma) / gamma
        objective /= self._weight_norm
        return Evaluation(
            thetas=thetas,
            objective=objective,
            violation=violation,
            bounds=bounds,
        )

    def fitness(self, genes: Sequence[int]) -> float:
        """Penalised scalar fitness for the GA (lower is better)."""
        ev = self.evaluate(genes)
        return ev.objective * (1.0 + self.PENALTY_WEIGHT * ev.violation)
