"""A genetic algorithm over bounded integer gene vectors.

The paper solves the timer-optimization problem of Section V with a GA
(Matlab's, with default parameters); this is a self-contained equivalent:
tournament selection, uniform + arithmetic crossover, log-scale mutation
(timer values span 1..2¹⁶, so mutation must be multiplicative to explore
the range), and elitism.  It *minimises* the fitness function.

Long runs degrade gracefully rather than abort: a fitness evaluation
that raises (or a ``map_fn`` batch that fails wholesale) is recorded as
a failure and scored as the worst possible fitness (``inf`` — the GA
minimises), and ``checkpoint_path`` persists the full GA state after
every generation so an interrupted run resumes where it stopped.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from dataclasses import asdict, dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

FitnessFn = Callable[[Sequence[int]], float]
#: Batch evaluator: list of gene vectors in, one entry per vector out, in
#: order — either a fitness value or an Exception instance for a vector
#: whose evaluation failed (crashed worker, timeout); exceptions become
#: worst-fitness failure records instead of aborting the run.
MapFn = Callable[[List[List[int]]], Sequence[object]]

#: Version tag written into checkpoints; bump on layout changes.
CHECKPOINT_SCHEMA = 1

#: At most this many per-gene failure records are kept (the counter keeps
#: counting past it; the records exist for diagnosis, not accounting).
MAX_FAILURE_RECORDS = 100
#: Per-generation telemetry hook: called with one record dict after every
#: evaluated generation (see :meth:`GeneticAlgorithm._generation_record`).
GenerationCallback = Callable[[Dict[str, Any]], None]


@dataclass(frozen=True)
class GAConfig:
    """Hyper-parameters of :class:`GeneticAlgorithm`."""

    population_size: int = 32
    generations: int = 40
    crossover_rate: float = 0.9
    mutation_rate: float = 0.2
    tournament_size: int = 3
    elitism: int = 2
    #: Stop early after this many generations without improvement (0 = off).
    stall_generations: int = 12
    seed: int = 0

    def __post_init__(self) -> None:
        if self.population_size < 2:
            raise ValueError("population must have at least two individuals")
        if self.generations < 1:
            raise ValueError("need at least one generation")
        if not 0.0 <= self.crossover_rate <= 1.0:
            raise ValueError("crossover_rate must be in [0, 1]")
        if not 0.0 <= self.mutation_rate <= 1.0:
            raise ValueError("mutation_rate must be in [0, 1]")
        if self.tournament_size < 1:
            raise ValueError("tournament_size must be positive")
        if not 0 <= self.elitism < self.population_size:
            raise ValueError("elitism must be smaller than the population")


@dataclass
class GAResult:
    """Outcome of one GA run."""

    best_genes: List[int]
    best_fitness: float
    generations_run: int
    #: Logical fitness evaluations requested (memo hits included).
    evaluations: int
    #: Best fitness after each generation (monotone non-increasing).
    history: List[float] = field(default_factory=list)
    #: Evaluations answered from the gene-vector memo (no fitness call).
    cache_hits: int = 0
    #: Evaluations that raised (or came back as exceptions from
    #: ``map_fn``) and were scored as worst fitness instead of aborting.
    failed_evaluations: int = 0
    #: Up to :data:`MAX_FAILURE_RECORDS` ``{"genes": [...], "error":
    #: "..."}`` records describing the failed evaluations.
    failures: List[Dict[str, Any]] = field(default_factory=list)


class GeneticAlgorithm:
    """Integer GA minimising ``fitness_fn`` within per-gene bounds."""

    def __init__(
        self,
        bounds: Sequence[Tuple[int, int]],
        fitness_fn: FitnessFn,
        config: Optional[GAConfig] = None,
        map_fn: Optional[MapFn] = None,
    ) -> None:
        """``map_fn``, when given, batch-evaluates a list of gene vectors
        (e.g. across worker processes) and returns their fitness values in
        order; it is only called for vectors not already memoized."""
        if not bounds:
            raise ValueError("need at least one gene")
        for lo, hi in bounds:
            if lo > hi:
                raise ValueError(f"invalid gene bounds ({lo}, {hi})")
        self.bounds = [(int(lo), int(hi)) for lo, hi in bounds]
        self.fitness_fn = fitness_fn
        self.config = config or GAConfig()
        self.map_fn = map_fn
        self._rng = np.random.default_rng(self.config.seed)
        self._evaluations = 0
        self._cache_hits = 0
        self._failed_evaluations = 0
        self._failures: List[Dict[str, Any]] = []
        #: Fitness memo keyed by the (hashable) gene tuple: the GA
        #: re-visits elites and converged individuals constantly, and the
        #: fitness of a deterministic problem never changes.
        self._memo: dict = {}

    # -- gene helpers ---------------------------------------------------------

    def _random_gene(self, i: int) -> int:
        """Log-uniform sample within the gene's bounds."""
        lo, hi = self.bounds[i]
        if lo == hi:
            return lo
        if lo >= 1:
            u = self._rng.uniform(np.log(lo), np.log(hi + 1))
            return int(np.clip(int(np.exp(u)), lo, hi))
        return int(self._rng.integers(lo, hi + 1))

    def _random_individual(self) -> List[int]:
        return [self._random_gene(i) for i in range(len(self.bounds))]

    def _clip(self, genes: List[int]) -> List[int]:
        return [
            int(np.clip(g, lo, hi)) for g, (lo, hi) in zip(genes, self.bounds)
        ]

    def _mutate(self, genes: List[int]) -> List[int]:
        out = list(genes)
        for i in range(len(out)):
            if self._rng.random() >= self.config.mutation_rate:
                continue
            lo, hi = self.bounds[i]
            if lo == hi:
                continue
            if self._rng.random() < 0.3:
                out[i] = self._random_gene(i)  # global jump
            else:
                factor = float(np.exp(self._rng.normal(0.0, 0.4)))
                out[i] = int(np.clip(round(out[i] * factor), lo, hi))
        return out

    def _crossover(self, a: List[int], b: List[int]) -> List[int]:
        child: List[int] = []
        for i in range(len(a)):
            r = self._rng.random()
            if r < 0.5:
                child.append(a[i] if self._rng.random() < 0.5 else b[i])
            else:
                w = self._rng.random()
                child.append(int(round(w * a[i] + (1 - w) * b[i])))
        return self._clip(child)

    def _tournament(
        self, population: List[List[int]], fitness: List[float]
    ) -> List[int]:
        k = min(self.config.tournament_size, len(population))
        idx = self._rng.integers(0, len(population), size=k)
        best = min(idx, key=lambda j: fitness[j])
        return population[best]

    def _record_failure(self, genes: Sequence[int], error: object) -> None:
        """Account one failed evaluation (kept in the result for diagnosis)."""
        self._failed_evaluations += 1
        if len(self._failures) < MAX_FAILURE_RECORDS:
            self._failures.append(
                {"genes": [int(g) for g in genes], "error": repr(error)}
            )

    def _safe_fitness(self, genes: List[int]) -> float:
        """One fitness call; a raising evaluation scores worst (``inf``).

        The GA minimises, so ``inf`` is the worst possible fitness — a
        failing individual loses every tournament but the run survives.
        """
        try:
            return float(self.fitness_fn(genes))
        except Exception as exc:
            self._record_failure(genes, exc)
            return float("inf")

    def _evaluate_population(self, population: List[List[int]]) -> List[float]:
        """Fitness of every individual, through the memo (and ``map_fn``).

        ``evaluations`` counts every *logical* evaluation — memo hits
        included — so the counter stays comparable across configurations.
        Failures degrade gracefully: an exception entry from ``map_fn``
        (or a raising serial evaluation) becomes a worst-fitness failure
        record, and a ``map_fn`` batch that fails wholesale (e.g. its
        worker pool died) is re-evaluated serially in-process.
        """
        self._evaluations += len(population)
        memo = self._memo
        keys = [tuple(ind) for ind in population]
        fresh = []
        for key in keys:
            if key in memo:
                self._cache_hits += 1
            elif key not in fresh:
                fresh.append(key)
        if fresh:
            values = self._evaluate_fresh([list(k) for k in fresh])
            for key, value in zip(fresh, values):
                memo[key] = value
        return [memo[key] for key in keys]

    def _evaluate_fresh(self, batch: List[List[int]]) -> List[float]:
        """Evaluate unmemoized gene vectors, surviving evaluator failures."""
        if self.map_fn is None:
            return [self._safe_fitness(genes) for genes in batch]
        try:
            values = list(self.map_fn(batch))
            if len(values) != len(batch):
                raise RuntimeError(
                    f"map_fn returned {len(values)} values for "
                    f"{len(batch)} gene vectors"
                )
        except Exception as exc:
            # The whole batch evaluator failed; fall back to in-process
            # serial evaluation so the generation still completes.
            self._record_failure([], exc)
            return [self._safe_fitness(genes) for genes in batch]
        out: List[float] = []
        for genes, value in zip(batch, values):
            if isinstance(value, BaseException):
                self._record_failure(genes, value)
                out.append(float("inf"))
            else:
                out.append(float(value))  # type: ignore[arg-type]
        return out

    # -- telemetry ---------------------------------------------------------------

    def _diversity(self, population: List[List[int]]) -> float:
        """Mean per-gene population std, normalised by the gene's span.

        0.0 for a fully converged population; around 0.29 (the std of a
        uniform distribution) for a population spread over the bounds.
        """
        arr = np.asarray(population, dtype=float)
        spreads = []
        for i, (lo, hi) in enumerate(self.bounds):
            if hi == lo:
                continue
            spreads.append(float(np.std(arr[:, i])) / (hi - lo))
        return float(np.mean(spreads)) if spreads else 0.0

    def _generation_record(
        self,
        generation: int,
        population: List[List[int]],
        fitness: List[float],
        best_fitness: float,
        stall: int,
        wall_seconds: float,
    ) -> Dict[str, Any]:
        """One telemetry row; infinite fitness values become ``None`` so
        the record stays strict-JSON serialisable (JSONL consumers)."""
        finite = [f for f in fitness if np.isfinite(f)]
        return {
            "generation": generation,
            "best_fitness": best_fitness if np.isfinite(best_fitness) else None,
            "gen_best_fitness": min(finite) if finite else None,
            "mean_fitness": float(np.mean(finite)) if finite else None,
            "finite_fraction": len(finite) / len(fitness) if fitness else 0.0,
            "diversity": self._diversity(population),
            "evaluations": self._evaluations,
            "cache_hits": self._cache_hits,
            "cache_hit_rate": (
                self._cache_hits / self._evaluations if self._evaluations else 0.0
            ),
            "stall": stall,
            "failed_evaluations": self._failed_evaluations,
            "wall_seconds": wall_seconds,
        }

    # -- checkpointing -----------------------------------------------------------

    def _config_fingerprint(self) -> Dict[str, Any]:
        """What a checkpoint must match to be resumable.

        Excludes ``generations`` on purpose: resuming a finished run with
        a higher generation budget is the supported way to extend it.
        """
        fp = asdict(self.config)
        fp.pop("generations")
        return {"schema": CHECKPOINT_SCHEMA, "config": fp,
                "bounds": [list(b) for b in self.bounds]}

    def _save_checkpoint(
        self,
        path: str,
        population: List[List[int]],
        fitness: List[float],
        best_genes: List[int],
        best_fitness: float,
        stall: int,
        generations_run: int,
        history: List[float],
    ) -> None:
        """Atomically persist the complete GA state after a generation."""
        state = {
            "fingerprint": self._config_fingerprint(),
            "population": population,
            "fitness": fitness,
            "best_genes": best_genes,
            "best_fitness": best_fitness,
            "stall": stall,
            "generations_run": generations_run,
            "history": history,
            "evaluations": self._evaluations,
            "cache_hits": self._cache_hits,
            "failed_evaluations": self._failed_evaluations,
            "failures": self._failures,
            "memo": [[list(k), v] for k, v in self._memo.items()],
            "rng_state": self._rng.bit_generator.state,
        }
        directory = os.path.dirname(path) or "."
        os.makedirs(directory, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(state, fh)
            os.replace(tmp, path)
        except OSError:
            if os.path.exists(tmp):
                os.unlink(tmp)

    def _load_checkpoint(self, path: str) -> Optional[Dict[str, Any]]:
        """Load and validate a checkpoint; None when absent or mismatched."""
        if not os.path.exists(path):
            return None
        try:
            with open(path) as fh:
                state = json.load(fh)
        except (OSError, ValueError):
            return None
        if not isinstance(state, dict):
            return None
        if state.get("fingerprint") != self._config_fingerprint():
            return None
        return state

    def _restore(self, state: Dict[str, Any]) -> None:
        """Install a loaded checkpoint into this GA's mutable state."""
        self._evaluations = int(state["evaluations"])
        self._cache_hits = int(state["cache_hits"])
        self._failed_evaluations = int(state["failed_evaluations"])
        self._failures = [dict(f) for f in state["failures"]]
        self._memo = {tuple(k): float(v) for k, v in state["memo"]}
        rng = np.random.default_rng()
        rng.bit_generator.state = state["rng_state"]
        self._rng = rng

    # -- main loop ---------------------------------------------------------------

    def run(
        self,
        initial: Optional[Sequence[Sequence[int]]] = None,
        on_generation: Optional[GenerationCallback] = None,
        checkpoint_path: Optional[str] = None,
    ) -> GAResult:
        """Run the GA; ``initial`` seeds part of the first population.

        ``on_generation``, when given, receives one telemetry record dict
        after every evaluated generation (generation 0 is the seeded
        initial population): best/mean fitness, population diversity,
        cumulative evaluation and memo-hit counters, and the wall-clock
        seconds the generation took.

        ``checkpoint_path``, when given, persists the complete GA state
        (population, memo, RNG stream, counters) to that file after every
        generation, and — if the file already holds a checkpoint whose
        configuration matches — resumes from it instead of starting over.
        Resuming with a larger ``generations`` budget extends a finished
        run.
        """
        cfg = self.config
        tick = time.perf_counter()
        state = (
            self._load_checkpoint(checkpoint_path) if checkpoint_path else None
        )
        if state is not None:
            self._restore(state)
            population = [list(ind) for ind in state["population"]]
            fitness = [float(f) for f in state["fitness"]]
            history = [float(f) for f in state["history"]]
            best_genes = list(state["best_genes"])
            best_fitness = float(state["best_fitness"])
            stall = int(state["stall"])
            generations_run = int(state["generations_run"])
        else:
            population = []
            if initial:
                population.extend(self._clip(list(ind)) for ind in initial)
            while len(population) < cfg.population_size:
                population.append(self._random_individual())
            population = population[: cfg.population_size]
            fitness = self._evaluate_population(population)

            history = []
            best_idx = int(np.argmin(fitness))
            best_genes = list(population[best_idx])
            best_fitness = fitness[best_idx]
            stall = 0
            generations_run = 0
            if on_generation is not None:
                now = time.perf_counter()
                on_generation(
                    self._generation_record(
                        0, population, fitness, best_fitness, stall, now - tick
                    )
                )
                tick = now
            if checkpoint_path:
                self._save_checkpoint(
                    checkpoint_path, population, fitness, best_genes,
                    best_fitness, stall, generations_run, history,
                )

        for _gen in range(generations_run, cfg.generations):
            if cfg.stall_generations and stall >= cfg.stall_generations:
                break
            generations_run += 1
            ranked = sorted(range(len(population)), key=lambda j: fitness[j])
            next_pop: List[List[int]] = [
                list(population[j]) for j in ranked[: cfg.elitism]
            ]
            while len(next_pop) < cfg.population_size:
                parent_a = self._tournament(population, fitness)
                if self._rng.random() < cfg.crossover_rate:
                    parent_b = self._tournament(population, fitness)
                    child = self._crossover(parent_a, parent_b)
                else:
                    child = list(parent_a)
                child = self._mutate(child)
                next_pop.append(child)
            population = next_pop
            fitness = self._evaluate_population(population)
            gen_best = int(np.argmin(fitness))
            if fitness[gen_best] < best_fitness:
                best_fitness = fitness[gen_best]
                best_genes = list(population[gen_best])
                stall = 0
            else:
                stall += 1
            history.append(best_fitness)
            if on_generation is not None:
                now = time.perf_counter()
                on_generation(
                    self._generation_record(
                        generations_run, population, fitness, best_fitness,
                        stall, now - tick,
                    )
                )
                tick = now
            if checkpoint_path:
                self._save_checkpoint(
                    checkpoint_path, population, fitness, best_genes,
                    best_fitness, stall, generations_run, history,
                )
            if cfg.stall_generations and stall >= cfg.stall_generations:
                break

        return GAResult(
            best_genes=best_genes,
            best_fitness=best_fitness,
            generations_run=generations_run,
            evaluations=self._evaluations,
            history=history,
            cache_hits=self._cache_hits,
            failed_evaluations=self._failed_evaluations,
            failures=list(self._failures),
        )
