"""A genetic algorithm over bounded integer gene vectors.

The paper solves the timer-optimization problem of Section V with a GA
(Matlab's, with default parameters); this is a self-contained equivalent:
tournament selection, uniform + arithmetic crossover, log-scale mutation
(timer values span 1..2¹⁶, so mutation must be multiplicative to explore
the range), and elitism.  It *minimises* the fitness function.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

FitnessFn = Callable[[Sequence[int]], float]
#: Batch evaluator: list of gene vectors in, fitness values out (in order).
MapFn = Callable[[List[List[int]]], Sequence[float]]
#: Per-generation telemetry hook: called with one record dict after every
#: evaluated generation (see :meth:`GeneticAlgorithm._generation_record`).
GenerationCallback = Callable[[Dict[str, Any]], None]


@dataclass(frozen=True)
class GAConfig:
    """Hyper-parameters of :class:`GeneticAlgorithm`."""

    population_size: int = 32
    generations: int = 40
    crossover_rate: float = 0.9
    mutation_rate: float = 0.2
    tournament_size: int = 3
    elitism: int = 2
    #: Stop early after this many generations without improvement (0 = off).
    stall_generations: int = 12
    seed: int = 0

    def __post_init__(self) -> None:
        if self.population_size < 2:
            raise ValueError("population must have at least two individuals")
        if self.generations < 1:
            raise ValueError("need at least one generation")
        if not 0.0 <= self.crossover_rate <= 1.0:
            raise ValueError("crossover_rate must be in [0, 1]")
        if not 0.0 <= self.mutation_rate <= 1.0:
            raise ValueError("mutation_rate must be in [0, 1]")
        if self.tournament_size < 1:
            raise ValueError("tournament_size must be positive")
        if not 0 <= self.elitism < self.population_size:
            raise ValueError("elitism must be smaller than the population")


@dataclass
class GAResult:
    """Outcome of one GA run."""

    best_genes: List[int]
    best_fitness: float
    generations_run: int
    #: Logical fitness evaluations requested (memo hits included).
    evaluations: int
    #: Best fitness after each generation (monotone non-increasing).
    history: List[float] = field(default_factory=list)
    #: Evaluations answered from the gene-vector memo (no fitness call).
    cache_hits: int = 0


class GeneticAlgorithm:
    """Integer GA minimising ``fitness_fn`` within per-gene bounds."""

    def __init__(
        self,
        bounds: Sequence[Tuple[int, int]],
        fitness_fn: FitnessFn,
        config: Optional[GAConfig] = None,
        map_fn: Optional[MapFn] = None,
    ) -> None:
        """``map_fn``, when given, batch-evaluates a list of gene vectors
        (e.g. across worker processes) and returns their fitness values in
        order; it is only called for vectors not already memoized."""
        if not bounds:
            raise ValueError("need at least one gene")
        for lo, hi in bounds:
            if lo > hi:
                raise ValueError(f"invalid gene bounds ({lo}, {hi})")
        self.bounds = [(int(lo), int(hi)) for lo, hi in bounds]
        self.fitness_fn = fitness_fn
        self.config = config or GAConfig()
        self.map_fn = map_fn
        self._rng = np.random.default_rng(self.config.seed)
        self._evaluations = 0
        self._cache_hits = 0
        #: Fitness memo keyed by the (hashable) gene tuple: the GA
        #: re-visits elites and converged individuals constantly, and the
        #: fitness of a deterministic problem never changes.
        self._memo: dict = {}

    # -- gene helpers ---------------------------------------------------------

    def _random_gene(self, i: int) -> int:
        """Log-uniform sample within the gene's bounds."""
        lo, hi = self.bounds[i]
        if lo == hi:
            return lo
        if lo >= 1:
            u = self._rng.uniform(np.log(lo), np.log(hi + 1))
            return int(np.clip(int(np.exp(u)), lo, hi))
        return int(self._rng.integers(lo, hi + 1))

    def _random_individual(self) -> List[int]:
        return [self._random_gene(i) for i in range(len(self.bounds))]

    def _clip(self, genes: List[int]) -> List[int]:
        return [
            int(np.clip(g, lo, hi)) for g, (lo, hi) in zip(genes, self.bounds)
        ]

    def _mutate(self, genes: List[int]) -> List[int]:
        out = list(genes)
        for i in range(len(out)):
            if self._rng.random() >= self.config.mutation_rate:
                continue
            lo, hi = self.bounds[i]
            if lo == hi:
                continue
            if self._rng.random() < 0.3:
                out[i] = self._random_gene(i)  # global jump
            else:
                factor = float(np.exp(self._rng.normal(0.0, 0.4)))
                out[i] = int(np.clip(round(out[i] * factor), lo, hi))
        return out

    def _crossover(self, a: List[int], b: List[int]) -> List[int]:
        child: List[int] = []
        for i in range(len(a)):
            r = self._rng.random()
            if r < 0.5:
                child.append(a[i] if self._rng.random() < 0.5 else b[i])
            else:
                w = self._rng.random()
                child.append(int(round(w * a[i] + (1 - w) * b[i])))
        return self._clip(child)

    def _tournament(
        self, population: List[List[int]], fitness: List[float]
    ) -> List[int]:
        k = min(self.config.tournament_size, len(population))
        idx = self._rng.integers(0, len(population), size=k)
        best = min(idx, key=lambda j: fitness[j])
        return population[best]

    def _evaluate_population(self, population: List[List[int]]) -> List[float]:
        """Fitness of every individual, through the memo (and ``map_fn``).

        ``evaluations`` counts every *logical* evaluation — memo hits
        included — so the counter stays comparable across configurations.
        """
        self._evaluations += len(population)
        memo = self._memo
        keys = [tuple(ind) for ind in population]
        fresh = []
        for key in keys:
            if key in memo:
                self._cache_hits += 1
            elif key not in fresh:
                fresh.append(key)
        if fresh:
            if self.map_fn is not None:
                values = self.map_fn([list(k) for k in fresh])
            else:
                values = [self.fitness_fn(list(k)) for k in fresh]
            for key, value in zip(fresh, values):
                memo[key] = float(value)
        return [memo[key] for key in keys]

    # -- telemetry ---------------------------------------------------------------

    def _diversity(self, population: List[List[int]]) -> float:
        """Mean per-gene population std, normalised by the gene's span.

        0.0 for a fully converged population; around 0.29 (the std of a
        uniform distribution) for a population spread over the bounds.
        """
        arr = np.asarray(population, dtype=float)
        spreads = []
        for i, (lo, hi) in enumerate(self.bounds):
            if hi == lo:
                continue
            spreads.append(float(np.std(arr[:, i])) / (hi - lo))
        return float(np.mean(spreads)) if spreads else 0.0

    def _generation_record(
        self,
        generation: int,
        population: List[List[int]],
        fitness: List[float],
        best_fitness: float,
        stall: int,
        wall_seconds: float,
    ) -> Dict[str, Any]:
        """One telemetry row; infinite fitness values become ``None`` so
        the record stays strict-JSON serialisable (JSONL consumers)."""
        finite = [f for f in fitness if np.isfinite(f)]
        return {
            "generation": generation,
            "best_fitness": best_fitness if np.isfinite(best_fitness) else None,
            "gen_best_fitness": min(finite) if finite else None,
            "mean_fitness": float(np.mean(finite)) if finite else None,
            "finite_fraction": len(finite) / len(fitness) if fitness else 0.0,
            "diversity": self._diversity(population),
            "evaluations": self._evaluations,
            "cache_hits": self._cache_hits,
            "cache_hit_rate": (
                self._cache_hits / self._evaluations if self._evaluations else 0.0
            ),
            "stall": stall,
            "wall_seconds": wall_seconds,
        }

    # -- main loop ---------------------------------------------------------------

    def run(
        self,
        initial: Optional[Sequence[Sequence[int]]] = None,
        on_generation: Optional[GenerationCallback] = None,
    ) -> GAResult:
        """Run the GA; ``initial`` seeds part of the first population.

        ``on_generation``, when given, receives one telemetry record dict
        after every evaluated generation (generation 0 is the seeded
        initial population): best/mean fitness, population diversity,
        cumulative evaluation and memo-hit counters, and the wall-clock
        seconds the generation took.
        """
        cfg = self.config
        tick = time.perf_counter()
        population: List[List[int]] = []
        if initial:
            population.extend(self._clip(list(ind)) for ind in initial)
        while len(population) < cfg.population_size:
            population.append(self._random_individual())
        population = population[: cfg.population_size]
        fitness = self._evaluate_population(population)

        history: List[float] = []
        best_idx = int(np.argmin(fitness))
        best_genes = list(population[best_idx])
        best_fitness = fitness[best_idx]
        stall = 0
        generations_run = 0
        if on_generation is not None:
            now = time.perf_counter()
            on_generation(
                self._generation_record(
                    0, population, fitness, best_fitness, stall, now - tick
                )
            )
            tick = now

        for _gen in range(cfg.generations):
            generations_run += 1
            ranked = sorted(range(len(population)), key=lambda j: fitness[j])
            next_pop: List[List[int]] = [
                list(population[j]) for j in ranked[: cfg.elitism]
            ]
            while len(next_pop) < cfg.population_size:
                parent_a = self._tournament(population, fitness)
                if self._rng.random() < cfg.crossover_rate:
                    parent_b = self._tournament(population, fitness)
                    child = self._crossover(parent_a, parent_b)
                else:
                    child = list(parent_a)
                child = self._mutate(child)
                next_pop.append(child)
            population = next_pop
            fitness = self._evaluate_population(population)
            gen_best = int(np.argmin(fitness))
            if fitness[gen_best] < best_fitness:
                best_fitness = fitness[gen_best]
                best_genes = list(population[gen_best])
                stall = 0
            else:
                stall += 1
            history.append(best_fitness)
            if on_generation is not None:
                now = time.perf_counter()
                on_generation(
                    self._generation_record(
                        generations_run, population, fitness, best_fitness,
                        stall, now - tick,
                    )
                )
                tick = now
            if cfg.stall_generations and stall >= cfg.stall_generations:
                break

        return GAResult(
            best_genes=best_genes,
            best_fitness=best_fitness,
            generations_run=generations_run,
            evaluations=self._evaluations,
            history=history,
            cache_hits=self._cache_hits,
        )
