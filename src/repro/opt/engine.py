"""The requirement-aware optimization engine (Figure 2a and Section VI).

:class:`OptimizationEngine` wraps the GA + timer problem into the
offline flow the paper describes:

1. for a given operating mode, the cores whose criticality level is at
   least the mode level run time-based coherence; the rest degrade to
   MSI (``θ = -1``);
2. the GA explores timer vectors, the static cache analysis supplies
   M_hit(Θ) as a black box, and constraint C1 enforces each timed
   task's WCML requirement at that mode;
3. repeating per mode yields the Mode-Switch LUT contents (Table II of
   the paper), which :meth:`OptimizationEngine.optimize_modes` returns
   as a :class:`ModeTable` ready to program into the cache controllers.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.params import MSI_THETA, LatencyParams
from repro.analysis.cache_analysis import IsolationProfile
from repro.analysis.wcml import CoreBound
from repro.opt.ga import GAConfig, GAResult, GenerationCallback, GeneticAlgorithm
from repro.opt.problem import TimerProblem

#: Per-worker problem instance, installed once by the pool initializer so
#: each GA fitness task ships only the gene vector, not the problem.
_WORKER_PROBLEM: Optional[TimerProblem] = None


def _init_fitness_worker(problem: TimerProblem) -> None:
    global _WORKER_PROBLEM
    _WORKER_PROBLEM = problem


def _fitness_worker(genes: List[int]) -> float:
    assert _WORKER_PROBLEM is not None, "pool initializer did not run"
    return _WORKER_PROBLEM.fitness(genes)


class _PoolEvaluator:
    """Crash-contained batch fitness evaluator (the GA's ``map_fn``).

    Owns its ``ProcessPoolExecutor`` and submits one future per gene
    vector.  A worker death breaks the pool — the evaluator then
    recreates it and re-evaluates every unfinished vector *in-process*
    (the fitness function is pure), so one poisoned worker never costs a
    generation its fitness values.  Per-vector exceptions are returned
    in-slot, matching the ``MapFn`` contract: the GA converts them to
    worst-fitness failure records instead of aborting.
    """

    def __init__(self, problem: TimerProblem, jobs: int) -> None:
        self.problem = problem
        self.jobs = jobs
        self._pool: Optional[ProcessPoolExecutor] = None

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(
                max_workers=self.jobs,
                initializer=_init_fitness_worker,
                initargs=(self.problem,),
            )
        return self._pool

    def __call__(self, batch: List[List[int]]) -> List[object]:
        """Evaluate a batch; failed slots carry the exception instance."""
        results: List[Optional[object]] = [None] * len(batch)
        pool = self._ensure_pool()
        futures = {
            pool.submit(_fitness_worker, genes): i
            for i, genes in enumerate(batch)
        }
        broken = False
        for future, i in futures.items():
            try:
                results[i] = future.result()
            except BrokenProcessPool:
                broken = True
                break
            except Exception as exc:
                results[i] = exc
        if broken:
            self.close()
            for i, genes in enumerate(batch):
                if results[i] is not None:
                    continue
                try:
                    results[i] = self.problem.fitness(genes)
                except Exception as exc:
                    results[i] = exc
        return results  # type: ignore[return-value]

    def close(self) -> None:
        """Shut the worker pool down (recreated lazily on next use)."""
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None


@dataclass
class OptimizationResult:
    """Outcome of one per-mode optimization run."""

    thetas: List[int]
    objective: float
    feasible: bool
    bounds: List[CoreBound]
    ga: GAResult
    wall_seconds: float


@dataclass
class ModeTable:
    """Per-mode timer vectors: the contents of every Mode-Switch LUT."""

    #: mode → full per-core timer vector (``MSI_THETA`` for degraded cores).
    thetas: Dict[int, List[int]] = field(default_factory=dict)
    results: Dict[int, OptimizationResult] = field(default_factory=dict)

    @property
    def modes(self) -> List[int]:
        return sorted(self.thetas)

    def lut_entries(self, core_id: int) -> Dict[int, int]:
        """The LUT contents of one core's cache controller."""
        return {mode: self.thetas[mode][core_id] for mode in self.thetas}

    def as_rows(self) -> List[List[int]]:
        """Rows of Table II: ``[mode, θ_0, θ_1, ...]``."""
        return [[m] + list(self.thetas[m]) for m in self.modes]

    def __str__(self) -> str:
        if not self.thetas:
            return "ModeTable(empty)"
        n = len(next(iter(self.thetas.values())))
        header = "m  | " + " ".join(f"θ_{i}^m".rjust(7) for i in range(n))
        lines = [header, "-" * len(header)]
        for m in self.modes:
            row = " ".join(str(t).rjust(7) for t in self.thetas[m])
            lines.append(f"{m:<3}| {row}")
        return "\n".join(lines)


class OptimizationEngine:
    """Offline configuration engine: traces in, timer LUT contents out."""

    def __init__(
        self,
        profiles: Sequence[IsolationProfile],
        latencies: LatencyParams,
        ga_config: Optional[GAConfig] = None,
    ) -> None:
        self.profiles = list(profiles)
        self.latencies = latencies
        self.ga_config = ga_config or GAConfig()

    @property
    def num_cores(self) -> int:
        return len(self.profiles)

    # -- single-mode optimization ------------------------------------------------

    def optimize(
        self,
        timed: Sequence[bool],
        requirements: Optional[Sequence[Optional[float]]] = None,
        seed_thetas: Optional[Sequence[Sequence[int]]] = None,
        objective_cores: Optional[Sequence[int]] = None,
        jobs: int = 1,
        on_generation: Optional[GenerationCallback] = None,
        checkpoint_path: Optional[str] = None,
    ) -> OptimizationResult:
        """Optimize the timers of the ``timed`` cores under constraint C1.

        ``jobs > 1`` evaluates each generation's *unmemoized* gene vectors
        across that many worker processes; the GA trajectory is identical
        to the serial run (the problem is deterministic and evaluation
        consumes no GA randomness).  A crashed worker breaks the pool,
        but the evaluator re-runs the unfinished vectors in-process and
        rebuilds the pool, so the run — and its trajectory — survives.

        ``on_generation`` is handed through to
        :meth:`~repro.opt.ga.GeneticAlgorithm.run` — e.g. a
        :class:`repro.obs.GAGenerationLog` collecting per-generation
        telemetry.  ``checkpoint_path`` likewise: the GA saves its state
        there each generation and resumes from it on restart.
        """
        started = time.perf_counter()
        problem = TimerProblem(
            self.profiles, self.latencies, timed, requirements,
            objective_cores=objective_cores,
        )
        if jobs > 1:
            evaluator = _PoolEvaluator(problem, jobs)
            try:
                ga = GeneticAlgorithm(
                    problem.gene_bounds(),
                    problem.fitness,
                    self.ga_config,
                    map_fn=evaluator,
                )
                result = ga.run(
                    initial=seed_thetas,
                    on_generation=on_generation,
                    checkpoint_path=checkpoint_path,
                )
            finally:
                evaluator.close()
        else:
            ga = GeneticAlgorithm(
                problem.gene_bounds(), problem.fitness, self.ga_config
            )
            result = ga.run(
                initial=seed_thetas,
                on_generation=on_generation,
                checkpoint_path=checkpoint_path,
            )
        evaluation = problem.evaluate(result.best_genes)
        return OptimizationResult(
            thetas=evaluation.thetas,
            objective=evaluation.objective,
            feasible=evaluation.feasible,
            bounds=evaluation.bounds,
            ga=result,
            wall_seconds=time.perf_counter() - started,
        )

    # -- per-mode flow (Section VI) -------------------------------------------------

    def optimize_modes(
        self,
        criticalities: Sequence[int],
        requirements_per_mode: Dict[int, Sequence[Optional[float]]],
        jobs: int = 1,
    ) -> ModeTable:
        """Run the engine once per mode to fill the Mode-Switch LUTs.

        At mode ``m`` every core with criticality ``>= m`` is timed (its
        requirement at that mode constrains the solution); the others are
        fixed to MSI.  ``requirements_per_mode[m][i]`` is Γ_i^m or None.
        """
        if len(criticalities) != self.num_cores:
            raise ValueError("one criticality level per core required")
        table = ModeTable()
        for mode in sorted(requirements_per_mode):
            reqs = list(requirements_per_mode[mode])
            if len(reqs) != self.num_cores:
                raise ValueError(
                    f"mode {mode}: one requirement slot per core required"
                )
            timed = [l >= mode for l in criticalities]
            if not any(timed):
                table.thetas[mode] = [MSI_THETA] * self.num_cores
                continue
            # Degraded cores carry no C1 constraint (Equation 3 applies)
            # and, per Section VI, are not optimisation inputs at all:
            # only tasks with l_j >= mode enter the objective.
            reqs = [r if t else None for r, t in zip(reqs, timed)]
            result = self.optimize(
                timed,
                reqs,
                objective_cores=[i for i, t in enumerate(timed) if t],
                jobs=jobs,
            )
            table.thetas[mode] = result.thetas
            table.results[mode] = result
        return table
