"""Simulation-backed GA fitness, batched through the lock-step engine.

The stock :class:`~repro.opt.problem.TimerProblem` objective is the
*analytic* worst-case bound (static cache analysis + WCML formulas).
:class:`SimulationFitness` swaps the objective for the *measured*
average memory latency of a full simulation over representative traces,
while keeping constraint C1 analytic (worst-case requirements cannot be
established by one measured run).

It implements the GA's ``MapFn`` contract, which is where the lock-step
engine earns its keep: every generation is a batch of timer vectors
over the *same* traces, so the internal :class:`~repro.runner.
SweepRunner` (``engine="lockstep"`` by default) decodes the trace once
and advances all candidate configurations together — and memoizes each
vector's result, so re-visited candidates across generations are cache
hits, not simulations.

Usage::

    problem = TimerProblem(profiles, latencies, timed)
    fit = SimulationFitness(problem, base_config, traces)
    ga = GeneticAlgorithm(problem.gene_bounds(), fit.fitness,
                          ga_config, map_fn=fit)
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.params import SimConfig
from repro.opt.problem import TimerProblem
from repro.runner import SweepJob, SweepRunner
from repro.sim.trace import Trace


class SimulationFitness:
    """Batch fitness evaluator scoring timer vectors by simulation.

    The score mirrors the analytic problem's shape — the weighted mean
    of the objective cores' average per-access memory latency, times
    the same multiplicative C1 penalty — so the GA explores the same
    landscape with measured instead of bounded latencies.
    """

    def __init__(
        self,
        problem: TimerProblem,
        base_config: SimConfig,
        traces: Sequence[Trace],
        engine: str = "lockstep",
        runner: Optional[SweepRunner] = None,
    ) -> None:
        if base_config.num_cores != problem.num_cores:
            raise ValueError(
                f"base_config has {base_config.num_cores} cores, "
                f"problem has {problem.num_cores}"
            )
        if len(traces) != problem.num_cores:
            raise ValueError("one trace per core required")
        self.problem = problem
        self.base_config = base_config
        self.traces = tuple(traces)
        self.runner = runner or SweepRunner(
            jobs=1, cache_dir=None, engine=engine
        )

    # -- MapFn ---------------------------------------------------------------

    def __call__(self, batch: List[List[int]]) -> List[object]:
        """Evaluate a generation; failed slots carry their exception."""
        jobs = []
        for genes in batch:
            thetas = self.problem.expand(genes)
            jobs.append(
                SweepJob(self.base_config.with_thetas(thetas), self.traces)
            )
        results = self.runner.run(jobs)
        out: List[object] = []
        for genes, result in zip(batch, results):
            try:
                out.append(self._score(genes, result))
            except Exception as exc:
                out.append(exc)
        return out

    def fitness(self, genes: Sequence[int]) -> float:
        """Single-vector entry point (the GA's serial fallback)."""
        value = self([list(genes)])[0]
        if isinstance(value, Exception):
            raise value
        return float(value)  # type: ignore[arg-type]

    # -- scoring -------------------------------------------------------------

    def _score(self, genes: Sequence[int], result: dict) -> float:
        problem = self.problem
        objective = 0.0
        cores = result["cores"]
        for i in problem.objective_cores:
            core = cores[i]
            accesses = core["hits"] + core["misses"]
            average = (
                core["total_memory_latency"] / accesses if accesses else 0.0
            )
            objective += problem.weights[i] * average
        objective /= problem._weight_norm
        # C1 stays the analytic bound: a measured run cannot certify a
        # worst case, so infeasible vectors pay the same penalty as in
        # the analytic problem.
        violation = problem.evaluate(genes).violation
        return objective * (1.0 + problem.PENALTY_WEIGHT * violation)

    def telemetry(self) -> dict:
        """The internal runner's counters (lock-step groups, cache)."""
        return self.runner.telemetry()
