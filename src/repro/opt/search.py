"""Ablation baselines for the optimization engine: random search and
hill climbing over the same :class:`~repro.opt.problem.TimerProblem`.

These exist to quantify what the GA buys (see the ablation benchmark in
``benchmarks/test_ablation_optimizer.py``); they share the fitness
function and gene bounds so comparisons are apples-to-apples.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

FitnessFn = Callable[[Sequence[int]], float]


@dataclass
class SearchResult:
    best_genes: List[int]
    best_fitness: float
    evaluations: int


def _log_uniform(rng: np.random.Generator, lo: int, hi: int) -> int:
    if lo == hi:
        return lo
    if lo >= 1:
        u = rng.uniform(np.log(lo), np.log(hi + 1))
        return int(np.clip(int(np.exp(u)), lo, hi))
    return int(rng.integers(lo, hi + 1))


def random_search(
    bounds: Sequence[Tuple[int, int]],
    fitness_fn: FitnessFn,
    budget: int = 500,
    seed: int = 0,
) -> SearchResult:
    """Pure log-uniform random sampling within the gene bounds."""
    if budget < 1:
        raise ValueError("budget must be positive")
    rng = np.random.default_rng(seed)
    best_genes: Optional[List[int]] = None
    best_fitness = float("inf")
    for _ in range(budget):
        genes = [_log_uniform(rng, lo, hi) for lo, hi in bounds]
        f = float(fitness_fn(genes))
        if f < best_fitness:
            best_fitness = f
            best_genes = genes
    assert best_genes is not None
    return SearchResult(best_genes, best_fitness, budget)


def hill_climb(
    bounds: Sequence[Tuple[int, int]],
    fitness_fn: FitnessFn,
    budget: int = 500,
    restarts: int = 4,
    seed: int = 0,
) -> SearchResult:
    """Multiplicative-step hill climbing with random restarts."""
    if budget < 1:
        raise ValueError("budget must be positive")
    rng = np.random.default_rng(seed)
    evaluations = 0
    best_genes: Optional[List[int]] = None
    best_fitness = float("inf")
    per_restart = max(1, budget // max(1, restarts))
    for _r in range(max(1, restarts)):
        current = [_log_uniform(rng, lo, hi) for lo, hi in bounds]
        current_fit = float(fitness_fn(current))
        evaluations += 1
        step = 2.0
        while evaluations < (_r + 1) * per_restart and step > 1.01:
            improved = False
            for i, (lo, hi) in enumerate(bounds):
                if lo == hi:
                    continue
                for factor in (step, 1.0 / step):
                    cand = list(current)
                    cand[i] = int(np.clip(round(cand[i] * factor), lo, hi))
                    if cand[i] == current[i]:
                        continue
                    f = float(fitness_fn(cand))
                    evaluations += 1
                    if f < current_fit:
                        current, current_fit = cand, f
                        improved = True
                    if evaluations >= (_r + 1) * per_restart:
                        break
                if evaluations >= (_r + 1) * per_restart:
                    break
            if not improved:
                step = step ** 0.5  # refine the step size
        if current_fit < best_fitness:
            best_fitness = current_fit
            best_genes = current
    assert best_genes is not None
    return SearchResult(best_genes, best_fitness, evaluations)
