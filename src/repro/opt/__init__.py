"""The requirement-aware timer optimization engine (Section V).

* :class:`repro.opt.problem.TimerProblem` — objective, variables and
  constraint C1.
* :class:`repro.opt.ga.GeneticAlgorithm` — the solver the paper uses.
* :class:`repro.opt.engine.OptimizationEngine` — the offline flow of
  Figure 2a, including the per-mode LUT generation of Section VI.
* :mod:`repro.opt.search` — random-search / hill-climbing ablations.
* :class:`repro.opt.simfit.SimulationFitness` — simulation-backed
  fitness, batched per generation through the lock-step engine.
"""

from repro.opt.engine import ModeTable, OptimizationEngine, OptimizationResult
from repro.opt.ga import GAConfig, GAResult, GeneticAlgorithm
from repro.opt.problem import Evaluation, TimerProblem
from repro.opt.search import SearchResult, hill_climb, random_search
from repro.opt.simfit import SimulationFitness

__all__ = [
    "ModeTable",
    "OptimizationEngine",
    "OptimizationResult",
    "GAConfig",
    "GAResult",
    "GeneticAlgorithm",
    "Evaluation",
    "TimerProblem",
    "SearchResult",
    "SimulationFitness",
    "hill_climb",
    "random_search",
]
