"""Seeded, deterministic fault schedules.

A :class:`FaultPlan` is the complete description of every fault a run
will suffer: *what* (a :class:`FaultKind`), *when* (an exact cycle),
*where* (a core) and *how hard* (``arg``/``span``).  Plans are plain
frozen data — generating one consumes randomness exactly once, from a
:class:`random.Random` seeded by the caller, so the same seed always
yields the same schedule on every platform and both simulator engines
(``fast_path=True/False``) observe identical fault timing.

The fault models are *hardware-level*: they perturb timer registers, a
snoop response, the shared bus or the backend — never Python state the
real hardware would not have.  The injector (:mod:`repro.fi.injector`)
only ever mutates the simulated machine through the same sanctioned
entry points the protocol engine itself uses, which is what makes the
"zero silent corruption" property of the campaign driver meaningful:
any injected fault either perturbs timing only (survived), or is
caught by the oracle / watchdog / hang detection (detected).
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.sim.timer import TIMER_BITS


class FaultKind(str, enum.Enum):
    """Hardware fault models the injector implements."""

    #: Flip one bit of a core's 16-bit timer-threshold register
    #: (HourGlass's linchpin register).  ``arg`` is the bit index.
    TIMER_FLIP = "timer_flip"
    #: A snoop response is lost: one pending-invalidation marking on the
    #: target core's cache is dropped (the countdown never fires).
    DROP_SNOOP = "drop_snoop"
    #: A snoop response is duplicated: a resident line observes a
    #: conflicting request that was never broadcast.
    DUP_SNOOP = "dup_snoop"
    #: Transient bus stall: the shared bus accepts no grant for ``arg``
    #: cycles.
    BUS_STALL = "bus_stall"
    #: DRAM latency jitter: +``arg`` cycles on fetches for ``span``
    #: cycles (non-perfect LLC only; a no-op under a perfect LLC).
    DRAM_JITTER = "dram_jitter"
    #: Spurious inclusion back-invalidation of one resident L1 line
    #: (dirty data is merged into the backend, as real inclusion
    #: hardware does).
    BACK_INVALIDATE = "back_invalidate"
    #: Mode-switch storm: ``arg`` mode switches in quick succession
    #: (``span`` cycles apart), cycling through the programmed modes.
    MODE_SWITCH_STORM = "mode_switch_storm"


#: Default campaign mix: every implemented fault model.
ALL_KINDS: Tuple[FaultKind, ...] = tuple(FaultKind)


@dataclass(frozen=True)
class Fault:
    """One scheduled fault."""

    kind: FaultKind
    cycle: int
    core: int = 0
    #: Kind-specific magnitude (bit index, stall cycles, jitter cycles,
    #: storm length).
    arg: int = 0
    #: Kind-specific extent (jitter window, storm spacing).
    span: int = 0

    def to_dict(self) -> Dict[str, object]:
        """JSON-compatible form for campaign artifacts."""
        return {
            "kind": self.kind.value,
            "cycle": self.cycle,
            "core": self.core,
            "arg": self.arg,
            "span": self.span,
        }


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic schedule of faults plus the response policy.

    ``response`` selects what the modelled fault-detection hardware does
    after an injected *timer* fault: ``"none"`` leaves the corrupted
    register in place, ``"degrade_to_msi"`` reprograms the affected
    core's register to the MSI value ``detection_latency`` cycles after
    the flip — the paper's graceful-degradation story (§III): the core
    keeps running, it merely loses its latency guarantee.
    """

    faults: Tuple[Fault, ...] = ()
    seed: int = 0
    response: str = "none"
    detection_latency: int = 50

    def __post_init__(self) -> None:
        if self.response not in ("none", "degrade_to_msi"):
            raise ValueError(f"unknown fault response {self.response!r}")
        if self.detection_latency < 0:
            raise ValueError("detection_latency must be non-negative")
        for fault in self.faults:
            if fault.cycle < 0:
                raise ValueError("fault cycles must be non-negative")

    def __len__(self) -> int:
        return len(self.faults)

    def kinds(self) -> List[str]:
        """Distinct fault-kind names scheduled by this plan, sorted."""
        return sorted({f.kind.value for f in self.faults})

    def to_dict(self) -> Dict[str, object]:
        """JSON-compatible form (campaign artifacts, determinism tests)."""
        return {
            "seed": self.seed,
            "response": self.response,
            "detection_latency": self.detection_latency,
            "faults": [f.to_dict() for f in self.faults],
        }

    @classmethod
    def generate(
        cls,
        seed: int,
        horizon: int,
        num_cores: int,
        kinds: Optional[Sequence[FaultKind]] = None,
        n_faults: int = 2,
        response: str = "none",
        detection_latency: int = 50,
    ) -> "FaultPlan":
        """Draw a deterministic plan of ``n_faults`` faults.

        ``horizon`` bounds the injection cycles (typically the fault-free
        run's final cycle); all randomness comes from
        ``random.Random(seed)`` so the schedule is bit-reproducible.
        """
        if horizon < 1:
            raise ValueError("horizon must be at least one cycle")
        if num_cores < 1:
            raise ValueError("need at least one core")
        rng = random.Random(seed)
        pool: Sequence[FaultKind] = tuple(kinds) if kinds else ALL_KINDS
        faults: List[Fault] = []
        for _ in range(n_faults):
            kind = pool[rng.randrange(len(pool))]
            cycle = rng.randrange(1, horizon + 1)
            core = rng.randrange(num_cores)
            if kind is FaultKind.TIMER_FLIP:
                arg, span = rng.randrange(TIMER_BITS), 0
            elif kind is FaultKind.BUS_STALL:
                arg, span = rng.randrange(10, 200), 0
            elif kind is FaultKind.DRAM_JITTER:
                arg, span = rng.randrange(10, 120), rng.randrange(200, 2000)
            elif kind is FaultKind.MODE_SWITCH_STORM:
                arg, span = rng.randrange(2, 6), rng.randrange(5, 60)
            else:  # snoop / back-invalidation faults need no magnitude
                arg, span = 0, 0
            faults.append(Fault(kind, cycle, core, arg, span))
        faults.sort(key=lambda f: (f.cycle, f.core, f.kind.value))
        return cls(
            faults=tuple(faults),
            seed=seed,
            response=response,
            detection_latency=detection_latency,
        )


@dataclass
class InjectionRecord:
    """What actually happened when one fault fired (injector output)."""

    fault: Fault
    cycle: int
    #: "injected", "no_target" (nothing to corrupt at that cycle) or
    #: "skipped_unsafe" (firing would have corrupted an in-flight
    #: transfer the real fault could not reach).
    effect: str
    detail: str = ""
    responses: List[str] = field(default_factory=list)

    def to_dict(self) -> Dict[str, object]:
        """JSON-compatible form for the injection ledger."""
        return {
            "fault": self.fault.to_dict(),
            "cycle": self.cycle,
            "effect": self.effect,
            "detail": self.detail,
            "responses": list(self.responses),
        }
