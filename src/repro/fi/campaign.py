"""Seeded fault-injection campaigns and the end-of-run corruption audit.

A *campaign* is one simulation run with one generated
:class:`~repro.fi.plan.FaultPlan` armed and the golden-value oracle on.
:func:`run_campaigns` runs ``campaigns`` of them — campaign *i* focuses
on fault kind ``kinds[i % len(kinds)]`` with a seed derived from
``(seed, i)`` — and classifies each into the detection matrix:

``detected``
    The run terminated loudly: the oracle raised, the ``max_cycles``
    watchdog tripped, or the kernel drained with outstanding requests
    (a coherence deadlock).  The fault was *caught*.
``survived``
    The run completed, every result was oracle-clean, and the post-run
    :func:`audit_system` found the machine consistent.  The fault only
    perturbed timing — the paper's graceful-degradation story.
``silent_corruption``
    The run completed but the audit found an inconsistency the oracle
    missed.  The campaign driver exists to prove this bucket stays
    empty; ``cohort faults`` exits non-zero if it ever is not.

Everything in a :class:`CampaignReport` is derived from seeds and
cycle-deterministic state — no wall-clock times — so the same
``(config, traces, campaigns, seed)`` always produces a byte-identical
report, on either simulator engine (``fast_path=True/False``).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence

from repro.params import MSI_THETA, SimConfig
from repro.sim.cache import LineState
from repro.sim.kernel import SimulationLimitError
from repro.sim.oracle import CoherenceViolationError
from repro.sim.system import System
from repro.sim.timer import MAX_THETA
from repro.sim.trace import Trace
from repro.fi.plan import ALL_KINDS, FaultKind, FaultPlan

#: The three buckets of the detection matrix, in reporting order.
VERDICTS = ("detected", "survived", "silent_corruption")


def audit_system(system: System) -> List[str]:
    """Post-run consistency audit; returns problem strings (empty = clean).

    Catches what the per-access oracle cannot: corruption that no
    subsequent load happened to observe.  Checks, for the final machine
    state, that (a) no line has two modified owners, (b) every modified
    copy holds its line's golden version, and (c) every golden version is
    still *reachable* — resident in some valid L1 copy, in the backend
    store, or in a still-buffered write-back.
    """
    problems: List[str] = []
    owners: Dict[int, List[int]] = {}
    for cache in system.caches:
        for line in cache.array.valid_lines():
            if line.state == LineState.M:
                owners.setdefault(line.line_addr, []).append(cache.core_id)
    for addr in sorted(owners):
        if len(owners[addr]) > 1:
            problems.append(
                f"line {addr} modified in cores {owners[addr]} at once"
            )
    for addr, golden in sorted(system.oracle.golden_versions().items()):
        reachable = set()
        for cache in system.caches:
            copy = cache.lookup(addr)
            if copy is None or not copy.valid:
                continue
            reachable.add(copy.version)
            if copy.state == LineState.M and copy.version != golden:
                problems.append(
                    f"line {addr} owner c{cache.core_id} holds version "
                    f"{copy.version}, golden is {golden}"
                )
        buffered = system.backend.buffered_version(addr)
        if buffered is not None:
            reachable.add(buffered)
        try:
            reachable.add(system.backend.version(addr))
        except KeyError:
            # Non-perfect LLC without the line resident: memory has it.
            reachable.add(system.dram.peek_version(addr))
        if golden not in reachable:
            problems.append(
                f"line {addr} golden version {golden} unreachable "
                f"(saw {sorted(reachable)})"
            )
    return problems


@dataclass
class CampaignOutcome:
    """Result of one campaign run."""

    index: int
    seed: int
    kind: str
    verdict: str
    detail: str
    final_cycle: Optional[int]
    plan: Dict[str, object]
    injections: Dict[str, object]

    def to_dict(self) -> Dict[str, object]:
        """JSON-compatible form for the detection-matrix artifact."""
        return {
            "index": self.index,
            "seed": self.seed,
            "kind": self.kind,
            "verdict": self.verdict,
            "detail": self.detail,
            "final_cycle": self.final_cycle,
            "plan": self.plan,
            "injections": self.injections,
        }


@dataclass
class CampaignReport:
    """Detection matrix plus per-campaign records (JSON-exportable)."""

    baseline_cycles: int
    response: str
    campaigns: List[CampaignOutcome] = field(default_factory=list)

    def matrix(self) -> Dict[str, Dict[str, int]]:
        """Fault kind → verdict → count."""
        out: Dict[str, Dict[str, int]] = {}
        for c in self.campaigns:
            row = out.setdefault(c.kind, {v: 0 for v in VERDICTS})
            row[c.verdict] += 1
        return out

    def totals(self) -> Dict[str, int]:
        """Verdict → count over all campaigns."""
        totals = {v: 0 for v in VERDICTS}
        for c in self.campaigns:
            totals[c.verdict] += 1
        return totals

    def silent_corruptions(self) -> List[CampaignOutcome]:
        """Campaigns that completed with an audit failure (must be empty)."""
        return [c for c in self.campaigns if c.verdict == "silent_corruption"]

    def to_dict(self) -> Dict[str, object]:
        """JSON-compatible form of the full report (CI artifact)."""
        return {
            "baseline_cycles": self.baseline_cycles,
            "response": self.response,
            "totals": self.totals(),
            "matrix": self.matrix(),
            "campaigns": [c.to_dict() for c in self.campaigns],
        }

    def render(self) -> str:
        """Human-readable detection matrix for the CLI."""
        rows = sorted(self.matrix().items())
        width = max([len("fault kind")] + [len(k) for k, _ in rows])
        head = (
            f"{'fault kind':<{width}}  detected  survived  silent_corruption"
        )
        lines = [head, "-" * len(head)]
        for kind, row in rows:
            lines.append(
                f"{kind:<{width}}  {row['detected']:>8}  {row['survived']:>8}"
                f"  {row['silent_corruption']:>17}"
            )
        totals = self.totals()
        lines.append("-" * len(head))
        lines.append(
            f"{'total':<{width}}  {totals['detected']:>8}  "
            f"{totals['survived']:>8}  {totals['silent_corruption']:>17}"
        )
        return "\n".join(lines)


def _program_default_luts(system: System, config: SimConfig) -> None:
    """Simple criticality-driven LUTs so mode-switch storms have teeth.

    Mode ``m`` keeps a core's configured timer while its criticality is
    at least ``m`` and degrades it to MSI otherwise — the Section VI
    policy, without requiring a full mode-table optimization per
    campaign.
    """
    for core_id, cache in enumerate(system.caches):
        cc = config.core_config(core_id)
        for mode in range(1, 5):
            theta = cc.theta if cc.criticality >= mode else MSI_THETA
            cache.lut.program(mode, theta)


def run_campaigns(
    config: SimConfig,
    traces: Sequence[Trace],
    campaigns: int,
    seed: int = 0,
    kinds: Optional[Sequence[FaultKind]] = None,
    n_faults: int = 2,
    response: str = "degrade_to_msi",
    detection_latency: int = 50,
    fast_path: bool = True,
) -> CampaignReport:
    """Run ``campaigns`` seeded fault campaigns; return the report.

    A fault-free baseline run (oracle armed) establishes the injection
    horizon and proves the workload itself is clean; each campaign then
    re-runs the workload under one generated plan with a watchdog
    ``max_cycles`` tight enough to catch runaway timers quickly.
    """
    if campaigns < 1:
        raise ValueError("need at least one campaign")
    pool = tuple(kinds) if kinds else ALL_KINDS
    checked = replace(config, check_coherence=True)
    baseline = System(checked, traces, fast_path=fast_path).run()
    horizon = max(1, baseline.final_cycle)
    # Generous watchdog: several baselines plus the longest timer window a
    # flipped register can open.  Idle waiting costs no events, so a large
    # bound is cheap; an actual hang still terminates promptly.
    watchdog = replace(
        checked, max_cycles=horizon * 4 + 8 * MAX_THETA + 10_000
    )
    report = CampaignReport(baseline_cycles=horizon, response=response)
    for i in range(campaigns):
        kind = pool[i % len(pool)]
        plan_seed = seed * 1_000_003 + i
        plan = FaultPlan.generate(
            plan_seed,
            horizon,
            config.num_cores,
            kinds=(kind,),
            n_faults=n_faults,
            response=response,
            detection_latency=detection_latency,
        )
        system = System(watchdog, traces, fast_path=fast_path, fault_plan=plan)
        _program_default_luts(system, config)
        verdict, detail, final_cycle = _run_one(system)
        assert system.injector is not None
        report.campaigns.append(
            CampaignOutcome(
                index=i,
                seed=plan_seed,
                kind=kind.value,
                verdict=verdict,
                detail=detail,
                final_cycle=final_cycle,
                plan=plan.to_dict(),
                injections=system.injector.summary(),
            )
        )
    return report


def _run_one(system: System) -> "tuple[str, str, Optional[int]]":
    """Execute one armed system and classify the outcome."""
    try:
        stats = system.run()
    except CoherenceViolationError as exc:
        return "detected", f"oracle: {exc}", None
    except SimulationLimitError as exc:
        return "detected", f"watchdog: {exc}", None
    except (RuntimeError, AssertionError) as exc:
        # Outstanding-request deadlock or a tripped engine invariant:
        # loud, therefore caught.
        return "detected", f"{type(exc).__name__}: {exc}", None
    problems = audit_system(system)
    if problems:
        return "silent_corruption", "; ".join(problems), stats.final_cycle
    return "survived", f"completed at cycle {stats.final_cycle}", stats.final_cycle
