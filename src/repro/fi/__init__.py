"""Deterministic fault injection and resilience campaigns (``repro.fi``).

CoHoRT's safety claim is that the system *degrades gracefully* — on a
mode switch, lower-criticality cores fall back to plain MSI instead of
suspending tasks (PAPER §III, Fig. 3) — and that the golden-value
oracle catches any coherence violation loudly.  This package attacks
both claims systematically, in the spirit of Rhea's RTL fault-injection
validation and HourGlass's timer-register focus:

* :mod:`repro.fi.plan` — :class:`FaultPlan`: a seeded, fully
  deterministic schedule of hardware-model faults (timer-register bit
  flips, dropped/duplicated snoop responses, bus stalls, DRAM jitter,
  spurious back-invalidations, mode-switch storms),
* :mod:`repro.fi.injector` — :class:`FaultInjector`: delivers the plan
  through the event kernel at exact cycles, publishes ``fault`` /
  ``fault_response`` events, and implements the ``degrade_to_msi``
  response hook (the paper's graceful-degradation story under timer
  faults),
* :mod:`repro.fi.campaign` — seeded campaign driver + end-of-run audit
  producing the detection matrix (detected / survived / silent
  corruption); ``cohort faults`` is its CLI.

The layer is strictly pay-per-use: a :class:`~repro.sim.system.System`
built without a ``fault_plan`` never imports this package and its cycle
counts are byte-identical to a fault-free build.
"""

from repro.fi.campaign import (
    CampaignOutcome,
    CampaignReport,
    audit_system,
    run_campaigns,
)
from repro.fi.injector import FaultInjector
from repro.fi.plan import Fault, FaultKind, FaultPlan

__all__ = [
    "CampaignOutcome",
    "CampaignReport",
    "Fault",
    "FaultInjector",
    "FaultKind",
    "FaultPlan",
    "audit_system",
    "run_campaigns",
]
