"""Delivers a :class:`~repro.fi.plan.FaultPlan` into a running system.

The injector schedules one kernel event per fault at ``(cycle,
PHASE_EFFECT)`` during :meth:`arm` — before the cores schedule anything
— so faults fire *before* any protocol effect of the same cycle, in
both simulator engines, and the whole run stays deterministic.  Every
firing publishes a ``fault`` event on the system's
:class:`~repro.sim.events.EventBus` and appends an
:class:`~repro.fi.plan.InjectionRecord`.

Fault handlers only mutate the simulated machine through the same
sanctioned entry points the protocol engine uses (``set_theta``,
``clear_pending``, ``back_invalidate`` + backend merge, bus ``stall``)
— a fault may therefore corrupt *timing* arbitrarily, but it can only
corrupt *data* in ways the golden-value oracle or the campaign audit
can observe.  Firings that would touch a line mid-transfer are recorded
as ``skipped_unsafe`` instead: the corresponding hardware fault cannot
reach a value that is already on the bus.

The ``degrade_to_msi`` response hook models the paper's graceful
degradation (§III): a detected timer fault reprograms the affected
core's threshold register to the MSI value after ``detection_latency``
cycles, trading the latency guarantee for continued correct operation.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional

from repro.params import MSI_THETA
from repro.sim.cache import CacheLine, LineState
from repro.sim.kernel import PHASE_EFFECT
from repro.sim.timer import TIMER_BITS
from repro.fi.plan import Fault, FaultKind, FaultPlan, InjectionRecord

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.system import System

#: Register image of the MSI sentinel: the all-ones 16-bit pattern.
_MSI_REGISTER = (1 << TIMER_BITS) - 1


class FaultInjector:
    """Schedules and executes one plan's faults against one system."""

    def __init__(self, system: "System", plan: FaultPlan) -> None:
        for fault in plan.faults:
            if not 0 <= fault.core < system.config.num_cores:
                raise ValueError(
                    f"fault targets core {fault.core} of a "
                    f"{system.config.num_cores}-core system"
                )
        self.system = system
        self.plan = plan
        self.records: List[InjectionRecord] = []
        self._armed = False

    def arm(self) -> None:
        """Schedule every fault of the plan (idempotent)."""
        if self._armed:
            return
        self._armed = True
        for i, fault in enumerate(self.plan.faults):
            self.system.kernel.schedule(
                fault.cycle, PHASE_EFFECT, self._fire, i
            )

    # -- dispatch ----------------------------------------------------------

    def _fire(self, index: int) -> None:
        fault = self.plan.faults[index]
        handler = {
            FaultKind.TIMER_FLIP: self._inject_timer_flip,
            FaultKind.DROP_SNOOP: self._inject_drop_snoop,
            FaultKind.DUP_SNOOP: self._inject_dup_snoop,
            FaultKind.BUS_STALL: self._inject_bus_stall,
            FaultKind.DRAM_JITTER: self._inject_dram_jitter,
            FaultKind.BACK_INVALIDATE: self._inject_back_invalidate,
            FaultKind.MODE_SWITCH_STORM: self._inject_mode_storm,
        }[fault.kind]
        record = InjectionRecord(
            fault=fault, cycle=self.system.kernel.now, effect="injected"
        )
        handler(fault, record)
        self.records.append(record)
        self.system.events.emit(
            "fault", fault_kind=fault.kind.value, core=fault.core,
            effect=record.effect, detail=record.detail,
        )

    # -- targeting helpers -------------------------------------------------

    def _line_is_safe(self, core: int, line: CacheLine) -> bool:
        """Whether corrupting this copy cannot hit an in-flight transfer."""
        engine = self.system.engine
        if engine.transfer_line == line.line_addr:
            return False
        if line.handover_ready:
            # Already promised as a data source; the real fault would be
            # racing the bus, which this functional model cannot express.
            return False
        return not self.system.backend.has_pending_writeback(line.line_addr)

    def _pick_line(
        self, core: int, pending: Optional[bool]
    ) -> Optional[CacheLine]:
        """First valid (index-ordered, hence deterministic) target line.

        ``pending=True`` restricts to lines with an armed countdown,
        ``pending=False`` to lines without one, ``None`` accepts both.
        """
        for line in self.system.caches[core].array._lines:
            if not line.valid:
                continue
            if pending is not None and (line.pending_inv_since is None) == pending:
                continue
            if self._line_is_safe(core, line):
                return line
        return None

    # -- fault models ------------------------------------------------------

    def _inject_timer_flip(self, fault: Fault, record: InjectionRecord) -> None:
        cache = self.system.caches[fault.core]
        register = _MSI_REGISTER if cache.is_msi else cache.theta
        flipped = register ^ (1 << (fault.arg % TIMER_BITS))
        if flipped == _MSI_REGISTER:
            new_theta = MSI_THETA
        elif flipped == 0:
            # A zero threshold expires immediately; θ=1 is the closest
            # representable behaviour of the lazy timer model.
            new_theta = 1
        else:
            new_theta = flipped
        cache.set_theta(new_theta)
        record.detail = f"theta {register}->{new_theta} (bit {fault.arg % TIMER_BITS})"
        if self.plan.response == "degrade_to_msi":
            self.system.kernel.schedule(
                self.system.kernel.now + self.plan.detection_latency,
                PHASE_EFFECT,
                self._respond_degrade,
                fault.core,
                record,
            )

    def _respond_degrade(self, core: int, record: InjectionRecord) -> None:
        """Detection hardware noticed the flip: fall back to plain MSI."""
        cache = self.system.caches[core]
        if not cache.is_msi:
            cache.set_theta(MSI_THETA)
        record.responses.append("degrade_to_msi")
        self.system.events.emit(
            "fault_response", response="degrade_to_msi", core=core
        )

    def _inject_drop_snoop(self, fault: Fault, record: InjectionRecord) -> None:
        line = self._pick_line(fault.core, pending=True)
        if line is None:
            record.effect = "no_target"
            record.detail = "no pending line to drop a response for"
            return
        # The response is lost: the armed countdown is forgotten and any
        # scheduled expiry event goes stale.  Waiting writers only
        # recover if a later event re-asserts the snoop — otherwise the
        # run deadlocks loudly (outstanding-request detection).
        line.clear_pending()
        line.generation += 1
        record.detail = f"line {line.line_addr} lost its pending marking"

    def _inject_dup_snoop(self, fault: Fault, record: InjectionRecord) -> None:
        line = self._pick_line(fault.core, pending=False)
        if line is None:
            record.effect = "no_target"
            record.detail = "no resident line to re-snoop"
            return
        engine = self.system.engine
        addr = line.line_addr
        if line.state == LineState.S:
            # A shared copy answers the phantom request by invalidating —
            # clean data, so only future hits are lost.
            line.invalidate()
            record.detail = f"line {addr} S copy invalidated by phantom snoop"
        else:
            # An owner concedes prematurely: the copy spills exactly as a
            # via-LLC handover would (dirty data written back), so the
            # value survives while every latency guarantee on it dies.
            engine._spill_owner(self.system.caches[fault.core], line)
            record.detail = f"line {addr} M copy conceded to phantom snoop"
        engine.refresh_snoop(addr)
        engine.update_line(addr)

    def _inject_bus_stall(self, fault: Fault, record: InjectionRecord) -> None:
        system = self.system
        now = system.kernel.now
        until = system.bus.stall(now, max(1, fault.arg))
        system.request_arbitration(at=until)
        if system.bus.current_job is not None:
            record.detail = (
                f"bus blocked until cycle {until} "
                "(stall overlaps the in-flight transfer)"
            )
        else:
            record.detail = f"bus blocked until cycle {until}"

    def _inject_dram_jitter(self, fault: Fault, record: InjectionRecord) -> None:
        system = self.system
        jitter = max(1, fault.arg)
        span = max(1, fault.span)
        system.dram.latency += jitter
        system.kernel.schedule(
            system.kernel.now + span, PHASE_EFFECT, self._end_dram_jitter, jitter
        )
        record.detail = (
            f"+{jitter} cycles DRAM latency for {span} cycles"
            + ("" if not system.config.perfect_llc else " (perfect LLC: inert)")
        )

    def _end_dram_jitter(self, jitter: int) -> None:
        self.system.dram.latency -= jitter

    def _inject_back_invalidate(
        self, fault: Fault, record: InjectionRecord
    ) -> None:
        line = self._pick_line(fault.core, pending=None)
        if line is None:
            record.effect = "no_target"
            record.detail = "no resident line to back-invalidate"
            return
        system = self.system
        addr = line.line_addr
        snap = system.caches[fault.core].back_invalidate(addr)
        assert snap is not None
        if snap.dirty:
            # Real inclusion hardware merges the dirty data on the way out.
            system.backend.snarf(addr, snap.version, system.kernel.now)
        system.events.emit(
            "back_invalidate", core=fault.core, line=addr, dirty=snap.dirty
        )
        record.detail = f"line {addr} spuriously back-invalidated"
        system.engine.refresh_snoop(addr)
        system.engine.update_line(addr)

    def _inject_mode_storm(self, fault: Fault, record: InjectionRecord) -> None:
        system = self.system
        modes = sorted(
            {m for cache in system.caches for m in cache.lut.modes}
        ) or [1, 2, 3, 4]
        count = max(1, fault.arg)
        spacing = max(1, fault.span)
        now = system.kernel.now
        for k in range(count):
            system.kernel.schedule(
                now + k * spacing,
                PHASE_EFFECT,
                system.switch_mode,
                modes[k % len(modes)],
            )
        record.detail = f"{count} mode switches every {spacing} cycles"

    # -- reporting ---------------------------------------------------------

    def summary(self) -> Dict[str, object]:
        """Injection ledger for campaign reports (JSON-compatible)."""
        return {
            "planned": len(self.plan),
            "injected": sum(1 for r in self.records if r.effect == "injected"),
            "no_target": sum(1 for r in self.records if r.effect == "no_target"),
            "responses": sum(len(r.responses) for r in self.records),
            "records": [r.to_dict() for r in self.records],
        }
