"""Parallel experiment runner with content-addressed result caching.

The paper's figures are sweeps of *independent* simulations: the same
trace set replayed under many ``(protocol, θ-vector)`` configurations.
:class:`SweepRunner` executes such batches through a
``ProcessPoolExecutor`` (``jobs > 1``) and memoizes every result in an
on-disk cache keyed by a content hash of the full simulation input —
the serialised :class:`~repro.params.SimConfig` (including
``check_coherence`` and ``max_cycles``, which ``config_to_dict`` omits)
plus the raw bytes of every trace array.  Re-running an experiment with
unchanged inputs is a cache lookup, not a simulation.

Results cross process and cache boundaries as plain JSON dicts (see
:func:`stats_to_dict`), and *fresh* results are normalised through a
JSON round-trip so that a dict served from the cache is byte-identical
to one computed in-process — the determinism suite relies on this.

Usage::

    runner = SweepRunner(jobs=4)
    results = runner.run_systems({"cohort": cfg_a, "msi": cfg_b}, traces)
    results["cohort"]["final_cycle"]
"""

from __future__ import annotations

import hashlib
import json
import multiprocessing
import os
import signal
import tempfile
import time
import uuid

try:  # POSIX-only advisory locking; the cache degrades gracefully without.
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None  # type: ignore[assignment]
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.params import SimConfig, config_from_dict, config_to_dict
from repro.sim.lockstep import lockstep_unsupported_reason, run_lockstep_batch
from repro.sim.stats import STATS_SCHEMA_VERSION, SystemStats
from repro.sim.system import run_simulation
from repro.sim.trace import Trace, decode_stats

#: Bump when the result schema or the simulation semantics change in a
#: way that invalidates previously cached results.  The *stats* schema
#: has its own version (:data:`repro.sim.stats.STATS_SCHEMA_VERSION`)
#: folded into every digest, so growing ``stats_to_dict`` never replays
#: stale cached dicts that lack the new fields.
#: v2: cache files became self-describing envelopes carrying their own
#: digest and schema tags (see :meth:`SweepRunner._cache_load`).
CACHE_VERSION = 2

DEFAULT_CACHE_DIR = os.path.join(".cohort_cache", "sweeps")

#: Subdirectory of ``cache_dir`` where corrupt/truncated cache
#: envelopes are moved (never deleted — they are forensic evidence).
QUARANTINE_DIR = ".quarantine"

#: Lock file used for cross-process advisory locking of cache
#: maintenance (eviction scans); entries themselves stay lock-free —
#: stores are already atomic ``os.replace`` writes.
CACHE_LOCK_FILE = ".lock"


class JobTimeoutError(RuntimeError):
    """A sweep job exceeded the runner's per-job ``timeout``.

    Raised *inside* the worker (via ``SIGALRM``) so the process pool
    stays alive; the runner retries the job up to ``max_retries`` times
    before giving up with :class:`SweepExecutionError`.
    """


class SweepExecutionError(RuntimeError):
    """A sweep job could not be completed within the retry budget."""


def stats_to_dict(stats: SystemStats) -> dict:
    """Serialise a :class:`SystemStats` to a JSON-compatible dict."""
    return {
        "schema": STATS_SCHEMA_VERSION,
        "final_cycle": stats.final_cycle,
        "execution_time": stats.execution_time,
        "bus_busy_cycles": stats.bus_busy_cycles,
        "bus_utilization": stats.bus_utilization(),
        "bus_grants": dict(stats.bus_grants),
        "timer_expiries": stats.timer_expiries,
        "replenishes_skipped": stats.replenishes_skipped,
        "writebacks": stats.writebacks,
        "dram_fetches": stats.dram_fetches,
        "back_invalidations": stats.back_invalidations,
        "mode_switches": stats.mode_switches,
        "cores": [
            {
                "core_id": c.core_id,
                "hits": c.hits,
                "misses": c.misses,
                "upgrades": c.upgrades,
                "runahead_hits": c.runahead_hits,
                "total_memory_latency": c.total_memory_latency,
                "max_request_latency": c.max_request_latency,
                "finish_cycle": c.finish_cycle,
                "request_latencies": c.request_latencies,
            }
            for c in stats.cores
        ],
    }


@dataclass(frozen=True)
class SweepJob:
    """One independent simulation of a sweep."""

    config: SimConfig
    traces: Tuple[Trace, ...]
    record_latencies: bool = False

    def digest(self) -> str:
        """Content hash of everything that determines the result.

        Folds in both the cache version (simulation semantics) and the
        stats schema version (result shape): entries written before a
        schema bump simply miss, forcing a re-simulation that produces
        the new fields.
        """
        h = hashlib.sha256()
        h.update(f"v{CACHE_VERSION}s{STATS_SCHEMA_VERSION}".encode())
        payload = config_to_dict(self.config)
        # config_to_dict intentionally omits run-control fields; they
        # change the result (or whether the oracle runs), so hash them.
        payload["check_coherence"] = self.config.check_coherence
        payload["max_cycles"] = self.config.max_cycles
        payload["record_latencies"] = self.record_latencies
        h.update(json.dumps(payload, sort_keys=True).encode())
        for trace in self.traces:
            h.update(b"|trace|")
            h.update(trace.gaps.tobytes())
            h.update(trace.ops.tobytes())
            h.update(trace.addrs.tobytes())
        return h.hexdigest()


def _execute(payload: tuple) -> dict:
    """Worker entry point: rebuild the job from primitives and simulate.

    Takes plain lists/dicts rather than live objects so the pickled task
    stays small and version-independent.  The optional sixth element
    selects the engine for this job (``"seed"`` disables the inline
    fast path; both produce identical results).
    """
    cfg_dict, check, max_cycles, record, raw_traces = payload[:5]
    engine = payload[5] if len(payload) > 5 else "fast"
    from dataclasses import replace

    config = replace(
        config_from_dict(cfg_dict),
        check_coherence=check,
        max_cycles=max_cycles,
    )
    traces = [Trace.from_arrays(g, o, a) for g, o, a in raw_traces]
    stats = run_simulation(
        config, traces, record_latencies=record,
        fast_path=engine != "seed",
    )
    return stats_to_dict(stats)


def _execute_payload(payload: tuple, timeout: Optional[float]) -> dict:
    """Worker entry point with an in-worker watchdog.

    The per-job timeout is enforced *inside* the worker with a real-time
    interval timer (``SIGALRM``): a stuck job raises
    :class:`JobTimeoutError` back through its future, leaving the worker
    process — and therefore the whole pool — healthy.  On platforms
    without ``SIGALRM`` the timeout is a no-op.
    """
    if not timeout or not hasattr(signal, "SIGALRM"):
        return _execute(payload)

    def _alarm(signum: int, frame: object) -> None:
        raise JobTimeoutError(f"sweep job exceeded timeout of {timeout}s")

    previous = signal.signal(signal.SIGALRM, _alarm)
    signal.setitimer(signal.ITIMER_REAL, timeout)
    try:
        return _execute(payload)
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


def _job_payload(job: SweepJob, engine: str = "fast") -> tuple:
    return (
        config_to_dict(job.config),
        job.config.check_coherence,
        job.config.max_cycles,
        job.record_latencies,
        [
            (t.gaps.tolist(), t.ops.tolist(), t.addrs.tolist())
            for t in job.traces
        ],
        engine,
    )


@dataclass
class SweepRunner:
    """Runs batches of independent simulations, with caching.

    ``jobs == 1`` executes inline (no process pool, no pickling); any
    higher value fans the *uncached* jobs out to worker processes.  The
    on-disk cache is shared between both modes and across runs; set
    ``cache_dir=None`` to disable persistence entirely.

    The parallel path is crash-contained: every job is submitted as its
    own future, a worker death (``BrokenProcessPool``) quarantines and
    retries only the jobs that were still uncollected — completed
    results are kept — and a per-job ``timeout`` is enforced inside the
    worker so a stuck simulation cannot poison the pool.  Retries are
    bounded (``max_retries`` per job) with exponential backoff
    (``backoff_base * 2**n`` seconds); deterministic simulation errors
    (oracle violations, watchdog limits) are never retried and propagate
    unchanged.
    """

    jobs: int = 1
    cache_dir: Optional[str] = DEFAULT_CACHE_DIR
    #: Per-job wall-clock timeout in seconds (None = unlimited); enforced
    #: in-worker via SIGALRM on the parallel path only.
    timeout: Optional[float] = None
    #: How many times one job may be re-run after a timeout or worker
    #: crash before the batch fails with :class:`SweepExecutionError`.
    max_retries: int = 2
    #: First-retry backoff in seconds; doubles per subsequent failure.
    backoff_base: float = 0.05
    #: Multiprocessing start method for the pool (None = platform
    #: default).  Tests use "fork" so monkeypatched module state
    #: propagates into workers.
    mp_context: Optional[str] = None
    #: Simulation engine: ``"lockstep"`` (default) routes groups of
    #: uncached jobs that share identical traces through
    #: :func:`repro.sim.lockstep.run_lockstep_batch` — one shared trace
    #: decode and batched hit classification per group, with configs the
    #: lock-step engine cannot serve peeled back to the per-event path.
    #: ``"fast"`` / ``"seed"`` force the inline-retirement or
    #: event-per-access engine for every job.  Results are bit-identical
    #: across all three (the cross-engine equivalence suite pins this),
    #: so cache entries are shared between engines.
    engine: str = "lockstep"
    cache_hits: int = 0
    cache_misses: int = 0
    #: Simulations actually executed (cache misses that ran).
    jobs_executed: int = 0
    #: Wall-clock seconds spent executing uncached jobs (per-batch; the
    #: parallel path measures the whole pool batch, not per worker).
    exec_seconds: float = 0.0
    #: Batches dispatched to the process pool (jobs > 1 only).
    parallel_batches: int = 0
    #: Pool breakages observed (a worker process died mid-batch).
    worker_failures: int = 0
    #: Jobs that hit the per-job timeout (including ones later retried).
    job_timeouts: int = 0
    #: Job resubmissions after a timeout or worker crash.
    job_retries: int = 0
    #: Total seconds slept in retry backoff.
    backoff_seconds: float = 0.0
    #: Cache stores that failed (OSError stores are dropped — the cache
    #: is best-effort — non-OSError failures also reraise).
    cache_store_failures: int = 0
    #: Orphaned ``*.tmp`` files removed from ``cache_dir`` at init.
    cache_tmp_swept: int = 0
    #: Last cache-store failure, ``"ExcType: message"`` (for telemetry).
    cache_store_last_error: Optional[str] = None
    #: On-disk cache size budget in bytes (0 = unbounded).  When a
    #: store pushes the cache over the budget, least-recently-used
    #: entries (by mtime — loads touch their entry) are evicted under a
    #: cross-process advisory ``fcntl`` lock until the budget holds.
    cache_budget_bytes: int = 0
    #: Entries evicted by the size budget (this runner's lifetime).
    cache_evictions: int = 0
    #: Bytes reclaimed by budget evictions.
    cache_evicted_bytes: int = 0
    #: Corrupt/truncated/mislabelled cache files moved to
    #: ``.quarantine/`` instead of being silently re-executed over.
    cache_quarantined: int = 0
    #: Same-trace groups executed through the lock-step engine.
    lockstep_groups: int = 0
    #: Jobs served by lock-step batches (subset of ``jobs_executed``).
    lockstep_jobs: int = 0
    #: Jobs peeled out of a same-trace group because their configuration
    #: is outside the lock-step engine's support (coherence checking on,
    #: non-standard protocol); they ran on the per-event path instead.
    lockstep_peeled: int = 0
    #: Histogram ``{group size: count}`` of executed lock-step groups,
    #: so telemetry distinguishes duplicate-digest dedup (PR 5) from
    #: lock-step amortisation of *distinct* configs over one trace.
    _lockstep_group_sizes: Dict[int, int] = field(
        default_factory=dict, repr=False
    )
    #: Optional structured operational logger (duck-typed: anything with
    #: an ``emit(event, **fields)`` method, normally
    #: :class:`repro.obs.ops.OpLogger`).  When set, the runner logs
    #: ``cache_hit``/``execute`` per job — carrying the submitting
    #: request's trace context when ``run`` received one — plus
    #: ``worker_quarantine`` on crash/timeout retries.
    oplog: Optional[object] = field(default=None, repr=False)
    _memory: Dict[str, dict] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        if self.jobs < 1:
            raise ValueError("jobs must be >= 1")
        if self.engine not in ("seed", "fast", "lockstep"):
            raise ValueError(
                f"engine must be 'seed', 'fast' or 'lockstep', "
                f"got {self.engine!r}"
            )
        if self.cache_budget_bytes < 0:
            raise ValueError("cache_budget_bytes must be >= 0")
        self._sweep_orphan_tmp()

    # -- cache ---------------------------------------------------------------

    def _sweep_orphan_tmp(self) -> None:
        """Remove ``*.tmp`` files a crashed store left in ``cache_dir``.

        Only files from this runner's own mkstemp pattern are touched; a
        concurrently live runner's in-flight temp file may be swept too,
        which costs that runner one dropped store (best-effort anyway),
        never a corrupt entry — the atomic ``os.replace`` would simply
        fail.
        """
        if self.cache_dir is None or not os.path.isdir(self.cache_dir):
            return
        try:
            names = os.listdir(self.cache_dir)
        except OSError:
            return
        for name in names:
            if name.endswith(".tmp"):
                try:
                    os.unlink(os.path.join(self.cache_dir, name))
                except OSError:
                    continue
                self.cache_tmp_swept += 1

    def _cache_path(self, key: str) -> Optional[str]:
        if self.cache_dir is None:
            return None
        return os.path.join(self.cache_dir, f"{key}.json")

    def _cache_load(self, key: str) -> Optional[dict]:
        if key in self._memory:
            return self._memory[key]
        path = self._cache_path(key)
        if path is None or not os.path.exists(path):
            return None
        try:
            with open(path) as fh:
                doc = json.load(fh)
        except ValueError:
            # Truncated or garbage bytes under a digest-keyed name:
            # quarantine the file so the evidence survives and the slot
            # re-executes cleanly instead of failing here forever.
            self._quarantine(path, key, "not valid JSON")
            return None
        except OSError:
            return None
        result, corrupt_reason = self._validate_entry(key, doc)
        if corrupt_reason is not None:
            self._quarantine(path, key, corrupt_reason)
            return None
        if result is None:
            # A legitimate miss (older cache/stats schema era): the
            # entry will be overwritten by the fresh store, not hoarded.
            return None
        # Touch the entry so budget eviction is least-recently-*used*,
        # not least-recently-written, across every process sharing the
        # cache directory.
        try:
            os.utime(path)
        except OSError:
            pass
        self._memory[key] = result
        return result

    @staticmethod
    def _validate_entry(
        key: str, doc: object
    ) -> Tuple[Optional[dict], Optional[str]]:
        """Check a cache file's envelope: ``(result, corrupt_reason)``.

        Entries are self-describing: they carry the job digest they were
        stored under plus the cache/stats schema versions they were
        written with.  ``(result, None)`` is a hit; ``(None, None)`` is
        a clean miss (an entry from an older schema era — stale, not
        broken, and overwritten by the next store); ``(None, reason)``
        is a *corrupt* entry (renamed, hand-edited, or structurally
        wrong) that the caller quarantines instead of replaying as a
        wrong result or re-parsing forever.
        """
        if not isinstance(doc, dict):
            return None, "envelope is not an object"
        missing = [
            field
            for field in ("cache_version", "stats_schema", "digest", "result")
            if field not in doc
        ]
        if missing:
            # An object with no envelope structure at all is damage,
            # not a schema-era artefact: quarantine it.
            return None, f"envelope missing {', '.join(missing)}"
        if (
            doc["cache_version"] != CACHE_VERSION
            or doc["stats_schema"] != STATS_SCHEMA_VERSION
        ):
            return None, None
        if doc.get("digest") != key:
            return None, (
                f"digest mismatch (envelope says "
                f"{str(doc.get('digest'))[:12]}…)"
            )
        result = doc.get("result")
        if not isinstance(result, dict) or "final_cycle" not in result:
            return None, "result payload missing or malformed"
        return result, None

    def _quarantine(self, path: str, key: str, reason: str) -> None:
        """Move a corrupt cache file into ``cache_dir/.quarantine/``.

        Best-effort: a concurrent runner may quarantine (or overwrite)
        the same file first, in which case there is nothing left to
        move and the counter stays honest.
        """
        assert self.cache_dir is not None
        quarantine = os.path.join(self.cache_dir, QUARANTINE_DIR)
        target = os.path.join(
            quarantine, f"{os.path.basename(path)}.{uuid.uuid4().hex[:8]}"
        )
        try:
            os.makedirs(quarantine, exist_ok=True)
            os.replace(path, target)
        except OSError:
            return
        self.cache_quarantined += 1
        if self.oplog is not None:
            self.oplog.emit(  # type: ignore[attr-defined]
                "cache_quarantine", component="runner", digest=key,
                reason=reason, quarantined_to=target,
            )

    # -- cache size budget ---------------------------------------------------

    def _cache_lock(self):
        """Cross-process advisory lock over cache maintenance.

        Returns an open fd holding an exclusive ``fcntl`` lock on the
        cache's lock file, or ``None`` when locking is unavailable
        (non-POSIX, unwritable dir) — eviction then proceeds unlocked,
        which at worst double-deletes an entry both runners chose.
        """
        if fcntl is None or self.cache_dir is None:
            return None
        lock_path = os.path.join(self.cache_dir, CACHE_LOCK_FILE)
        try:
            fd = os.open(lock_path, os.O_CREAT | os.O_RDWR, 0o644)
        except OSError:
            return None
        try:
            fcntl.flock(fd, fcntl.LOCK_EX)
        except OSError:
            os.close(fd)
            return None
        return fd

    @staticmethod
    def _cache_unlock(fd) -> None:
        if fd is None:
            return
        try:
            fcntl.flock(fd, fcntl.LOCK_UN)  # type: ignore[union-attr]
        finally:
            os.close(fd)

    def _cache_entries(self) -> List[Tuple[float, int, str]]:
        """``(mtime, bytes, path)`` for every entry file in the cache."""
        assert self.cache_dir is not None
        entries: List[Tuple[float, int, str]] = []
        try:
            names = os.listdir(self.cache_dir)
        except OSError:
            return entries
        for name in names:
            if not name.endswith(".json"):
                continue
            path = os.path.join(self.cache_dir, name)
            try:
                stat = os.stat(path)
            except OSError:
                continue
            entries.append((stat.st_mtime, stat.st_size, path))
        return entries

    def cache_size_bytes(self) -> int:
        """Total bytes currently held by on-disk cache entries."""
        if self.cache_dir is None:
            return 0
        return sum(size for _, size, _ in self._cache_entries())

    def _enforce_cache_budget(self, keep_key: Optional[str] = None) -> None:
        """Evict least-recently-used entries until the budget holds.

        Runs under the cross-process advisory lock so concurrent
        runners do not both scan-and-evict the same files; the entry
        just stored (``keep_key``) is never evicted by its own store.
        """
        if not self.cache_budget_bytes or self.cache_dir is None:
            return
        keep_path = self._cache_path(keep_key) if keep_key else None
        lock = self._cache_lock()
        try:
            entries = sorted(self._cache_entries())
            total = sum(size for _, size, _ in entries)
            for mtime, size, path in entries:
                if total <= self.cache_budget_bytes:
                    break
                if path == keep_path:
                    continue
                try:
                    os.unlink(path)
                except OSError:
                    continue
                total -= size
                self.cache_evictions += 1
                self.cache_evicted_bytes += size
                # The in-memory memo is untouched: the budget governs
                # the shared *disk* tier; warm in-process results stay.
                evicted_key = os.path.basename(path)[: -len(".json")]
                if self.oplog is not None:
                    self.oplog.emit(  # type: ignore[attr-defined]
                        "cache_evict", component="runner",
                        digest=evicted_key, bytes=size,
                        budget=self.cache_budget_bytes,
                    )
        finally:
            self._cache_unlock(lock)

    def _cache_store(self, key: str, result: dict) -> None:
        self._memory[key] = result
        path = self._cache_path(key)
        if path is None:
            return
        envelope = {
            "digest": key,
            "cache_version": CACHE_VERSION,
            "stats_schema": STATS_SCHEMA_VERSION,
            "result": result,
        }
        # Atomic write: concurrent runners may race on the same key.
        try:
            os.makedirs(self.cache_dir, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=self.cache_dir, suffix=".tmp")
        except OSError as exc:
            self._record_store_failure(exc)
            return
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(envelope, fh)
            os.replace(tmp, path)
            self._enforce_cache_budget(keep_key=key)
        except OSError as exc:
            # Disk full, permissions, … — the cache is best-effort, the
            # in-memory copy stands, the sweep proceeds.
            self._record_store_failure(exc)
        except BaseException as exc:
            # A non-IO failure (e.g. an unserialisable result) is a
            # programming error: record it, then let it propagate.
            self._record_store_failure(exc)
            raise
        finally:
            if os.path.exists(tmp):
                try:
                    os.unlink(tmp)
                except OSError:
                    pass

    def _record_store_failure(self, exc: BaseException) -> None:
        self.cache_store_failures += 1
        self.cache_store_last_error = f"{type(exc).__name__}: {exc}"

    # -- execution -----------------------------------------------------------

    def _op_emit(
        self,
        event: str,
        op_context: Optional[Sequence[Mapping[str, object]]],
        index: int,
        **fields: object,
    ) -> None:
        """Emit one runner oplog event, with trace context when known."""
        if self.oplog is None:
            return
        info: Mapping[str, object] = {}
        if op_context is not None and index < len(op_context):
            info = op_context[index]
        self.oplog.emit(
            event,
            component="runner",
            trace_id=info.get("trace_id"),
            job_id=info.get("job_id"),
            **fields,
        )

    def run(
        self,
        jobs: Sequence[SweepJob],
        op_context: Optional[Sequence[Mapping[str, object]]] = None,
    ) -> List[dict]:
        """Run a batch; returns one result dict per job, in order.

        Identical jobs (same content digest) within one batch execute
        once: duplicates are counted as cache hits and served the single
        execution's result — the serving layer batches submissions from
        many clients, where duplicate jobs are the common case.

        ``op_context`` optionally carries one ``{"trace_id": …,
        "job_id": …}`` mapping per job (aligned by index) so the
        runner's oplog events correlate with the serving-layer request
        that submitted each job; omitted entries log without context.
        """
        keys = [job.digest() for job in jobs]
        results: List[Optional[dict]] = [None] * len(jobs)
        pending: List[int] = []
        first_slot: Dict[str, int] = {}
        duplicates: Dict[str, List[int]] = {}
        for i, key in enumerate(keys):
            cached = self._cache_load(key)
            if cached is not None:
                self.cache_hits += 1
                results[i] = cached
                self._op_emit(
                    "cache_hit", op_context, i, digest=key, dedup=False
                )
            elif key in first_slot:
                self.cache_hits += 1
                duplicates.setdefault(key, []).append(i)
                self._op_emit(
                    "cache_hit", op_context, i, digest=key, dedup=True
                )
            else:
                self.cache_misses += 1
                first_slot[key] = i
                pending.append(i)

        def publish(slot: int, result: dict) -> None:
            # Normalise through JSON so fresh and cached results are
            # indistinguishable (e.g. tuples become lists).
            result = json.loads(json.dumps(result))
            self._cache_store(keys[slot], result)
            results[slot] = result
            self._op_emit(
                "execute", op_context, slot,
                digest=keys[slot], engine=self.engine,
            )
            for dup in duplicates.get(keys[slot], ()):
                results[dup] = result

        if pending and self.engine == "lockstep":
            pending = self._run_lockstep_groups(jobs, pending, publish)

        if pending:
            # Lock-step leftovers (singletons, unsupported configs) run
            # on the fast per-event path; only engine="seed" forces the
            # event-per-access engine everywhere.
            worker_engine = "seed" if self.engine == "seed" else "fast"
            payloads = [_job_payload(jobs[i], worker_engine) for i in pending]
            started = time.perf_counter()
            if self.jobs == 1 or len(pending) == 1:
                fresh = [_execute(p) for p in payloads]
            else:
                fresh = self._run_parallel(payloads)
            self.exec_seconds += time.perf_counter() - started
            self.jobs_executed += len(pending)
            for i, result in zip(pending, fresh):
                publish(i, result)
        return results  # type: ignore[return-value]

    def _run_lockstep_groups(
        self,
        jobs: Sequence[SweepJob],
        pending: List[int],
        publish,
    ) -> List[int]:
        """Execute same-trace groups of ``pending`` jobs in lock-step.

        Groups the uncached jobs by trace content (plus the
        ``record_latencies`` flag, which changes the result shape) and
        evaluates every group of two or more supported configurations
        through :func:`repro.sim.lockstep.run_lockstep_batch` — the
        trace is decoded once and hit runs are classified in batch,
        while each config keeps its own caches, bus and stats, so the
        results are bit-identical to the per-event path.  Returns the
        leftover job slots (singleton groups and unsupported configs)
        for the normal execution path.
        """
        groups: Dict[Tuple[Tuple[str, ...], bool], List[int]] = {}
        leftover: List[int] = []
        for i in pending:
            job = jobs[i]
            if lockstep_unsupported_reason(job.config) is not None:
                self.lockstep_peeled += 1
                leftover.append(i)
                continue
            key = (
                tuple(t.content_digest() for t in job.traces),
                job.record_latencies,
            )
            groups.setdefault(key, []).append(i)
        for key, slots in groups.items():
            if len(slots) < 2:
                leftover.extend(slots)
                continue
            started = time.perf_counter()
            batch = run_lockstep_batch(
                [jobs[i].config for i in slots],
                list(jobs[slots[0]].traces),
                record_latencies=key[1],
            )
            self.exec_seconds += time.perf_counter() - started
            self.jobs_executed += len(slots)
            self.lockstep_groups += 1
            self.lockstep_jobs += len(slots)
            size = len(slots)
            self._lockstep_group_sizes[size] = (
                self._lockstep_group_sizes.get(size, 0) + 1
            )
            for i, stats in zip(slots, batch):
                publish(i, stats_to_dict(stats))
        leftover.sort()
        return leftover

    # -- crash-contained parallel execution ----------------------------------

    def _make_pool(self, workers: int) -> ProcessPoolExecutor:
        ctx = (
            multiprocessing.get_context(self.mp_context)
            if self.mp_context
            else None
        )
        return ProcessPoolExecutor(max_workers=workers, mp_context=ctx)

    def _backoff(self, attempt: int) -> None:
        """Sleep the exponential backoff for a job's ``attempt``-th retry."""
        delay = self.backoff_base * (2 ** (attempt - 1))
        if delay > 0:
            time.sleep(delay)
            self.backoff_seconds += delay

    def _retry_or_fail(self, slot: int, attempts: List[int], cause: str) -> None:
        """Account one failed execution of ``slot``; raise when exhausted."""
        attempts[slot] += 1
        if self.oplog is not None:
            self.oplog.emit(
                "worker_quarantine", component="runner", slot=slot,
                attempt=attempts[slot], reason=cause,
                exhausted=attempts[slot] > self.max_retries,
            )
        if attempts[slot] > self.max_retries:
            raise SweepExecutionError(
                f"sweep job {slot} failed {attempts[slot]} times "
                f"(last cause: {cause}); giving up after "
                f"max_retries={self.max_retries}"
            )
        self.job_retries += 1

    def _run_parallel(self, payloads: List[tuple]) -> List[dict]:
        """Execute payloads on a process pool, one future per job.

        A worker crash breaks the whole ``ProcessPoolExecutor`` — every
        uncollected future raises ``BrokenProcessPool``.  Containment
        works by keeping the results already collected, recreating the
        pool, and resubmitting only the uncollected jobs with their
        retry counters bumped: innocents complete on the fresh pool,
        while a job that deterministically kills its worker exhausts
        ``max_retries`` and fails the batch with a pointed error.
        Deterministic simulation exceptions propagate immediately.
        """
        self.parallel_batches += 1
        workers = min(self.jobs, len(payloads))
        results: List[Optional[dict]] = [None] * len(payloads)
        attempts = [0] * len(payloads)
        todo = list(range(len(payloads)))
        pool = self._make_pool(workers)
        try:
            while todo:
                outstanding = {
                    pool.submit(_execute_payload, payloads[i], self.timeout): i
                    for i in todo
                }
                todo = []
                broken = False
                while outstanding:
                    done, _ = wait(outstanding, return_when=FIRST_COMPLETED)
                    for future in done:
                        slot = outstanding.pop(future)
                        try:
                            results[slot] = future.result()
                        except JobTimeoutError as exc:
                            self.job_timeouts += 1
                            self._retry_or_fail(slot, attempts, str(exc))
                            todo.append(slot)
                        except BrokenProcessPool:
                            if not broken:
                                broken = True
                                self.worker_failures += 1
                            self._retry_or_fail(
                                slot, attempts, "worker process died"
                            )
                            todo.append(slot)
                if broken:
                    # The executor is unusable after a worker death;
                    # replace it before resubmitting the survivors.
                    pool.shutdown(wait=False, cancel_futures=True)
                    pool = self._make_pool(workers)
                if todo:
                    todo.sort()
                    # One backoff per retry round, scaled by the worst
                    # job's failure count so repeated crashes slow down.
                    self._backoff(max(attempts[i] for i in todo))
        finally:
            pool.shutdown(wait=False, cancel_futures=True)
        assert all(r is not None for r in results)
        return results  # type: ignore[return-value]

    def telemetry(self) -> dict:
        """Cache and worker-timing counters of this runner's lifetime.

        The shape is stable (consumed by ``cohort … --metrics-out`` and
        summarised by ``cohort metrics``).
        """
        requested = self.cache_hits + self.cache_misses
        decode = decode_stats
        return {
            "jobs": self.jobs,
            "engine": self.engine,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_hit_rate": self.cache_hits / requested if requested else 0.0,
            "jobs_executed": self.jobs_executed,
            "exec_seconds": self.exec_seconds,
            "parallel_batches": self.parallel_batches,
            "worker_failures": self.worker_failures,
            "job_timeouts": self.job_timeouts,
            "job_retries": self.job_retries,
            "backoff_seconds": self.backoff_seconds,
            "cache_store_failures": self.cache_store_failures,
            "cache_store_last_error": self.cache_store_last_error,
            "cache_tmp_swept": self.cache_tmp_swept,
            "cache_dir": self.cache_dir,
            "cache_budget_bytes": self.cache_budget_bytes,
            "cache_size_bytes": self.cache_size_bytes(),
            "cache_evictions": self.cache_evictions,
            "cache_evicted_bytes": self.cache_evicted_bytes,
            "cache_quarantined": self.cache_quarantined,
            "lockstep_groups": self.lockstep_groups,
            "lockstep_jobs": self.lockstep_jobs,
            "lockstep_peeled": self.lockstep_peeled,
            # {group size: count}; JSON object keys are strings so the
            # shape survives a --metrics-out round-trip unchanged.
            "lockstep_group_sizes": {
                str(size): count
                for size, count in sorted(self._lockstep_group_sizes.items())
            },
            "trace_decode_hits": decode["hits"],
            "trace_decode_misses": decode["misses"],
        }

    def run_one(
        self,
        config: SimConfig,
        traces: Sequence[Trace],
        record_latencies: bool = False,
    ) -> dict:
        """Run (or look up) a single simulation."""
        return self.run(
            [SweepJob(config, tuple(traces), record_latencies)]
        )[0]

    def run_systems(
        self,
        named_configs: Mapping[str, SimConfig],
        traces: Sequence[Trace],
        record_latencies: bool = False,
    ) -> Dict[str, dict]:
        """Run one simulation per named configuration over shared traces."""
        names = list(named_configs)
        batch = [
            SweepJob(named_configs[name], tuple(traces), record_latencies)
            for name in names
        ]
        return dict(zip(names, self.run(batch)))
