"""CoHoRT: criticality- and requirement-aware heterogeneous cache coherence.

A faithful Python reproduction of *"Criticality and Requirement Aware
Heterogeneous Coherence for Mixed Criticality Systems"* (DATE 2025):
a cycle-accurate multi-core cache simulator, the CoHoRT heterogeneous
timed/MSI coherence architecture, the worst-case timing analysis, the
GA-based timer optimization engine, and the mode-switching machinery —
plus the PCC, PENDULUM and COTS-MSI baselines it is evaluated against.
"""

from repro.params import (
    MSI_THETA,
    ArbiterKind,
    CacheGeometry,
    CoreConfig,
    LatencyParams,
    MemOp,
    SimConfig,
    cohort_config,
    config_from_dict,
    config_to_dict,
    load_config,
    msi_fcfs_config,
    pcc_config,
    pendulum_config,
    pendulum_star_config,
    save_config,
)
from repro.runner import SweepJob, SweepRunner
from repro.sim import (
    CoherenceViolationError,
    System,
    Trace,
    TraceAccess,
    run_simulation,
)

__version__ = "1.0.0"

__all__ = [
    "MSI_THETA",
    "ArbiterKind",
    "CacheGeometry",
    "CoreConfig",
    "LatencyParams",
    "MemOp",
    "SimConfig",
    "cohort_config",
    "config_from_dict",
    "config_to_dict",
    "load_config",
    "save_config",
    "msi_fcfs_config",
    "pcc_config",
    "pendulum_config",
    "pendulum_star_config",
    "SweepJob",
    "SweepRunner",
    "System",
    "Trace",
    "TraceAccess",
    "run_simulation",
    "CoherenceViolationError",
    "__version__",
]
