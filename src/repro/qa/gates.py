"""The declarative gate engine: questions, verdicts, promotion checks.

A *gate spec* is a JSON document of questions, each carrying an ``id``,
a human ``question``, a ``check`` (a Python expression evaluated over a
run manifest — typically a ``metrics[...]`` lookup), an ``assertion``
(an expression over the check's ``result``, the spec ``params``, and —
for pair gates — the ``baseline`` manifest's value of the same check),
a ``severity`` and a ``category``.  :func:`evaluate_spec` runs every
question over one manifest or a (baseline, candidate) pair and returns
a :class:`GateReport` whose exit code is the promotion decision.

Severity ladder (:data:`SEVERITIES`): ``info`` and ``warn`` failures
are reported but never gate; ``high`` and ``critical`` failures set the
report's non-zero exit code.  A question that cannot be *evaluated* —
its check raises (a metric is missing or ``None``), or the baseline
lacks the key a pair assertion needs — is an ``error`` outcome and has
its severity **escalated one level**: an unevaluable gate must not
fail softer than a clean failure of the same question.

Checks and assertions are restricted expressions: they evaluate with no
builtins beyond a small arithmetic whitelist and see only ``metrics``,
``manifest``, ``params``, ``result``/``baseline`` and ``math``
helpers.  Comparisons against ``None`` or NaN raise or return false
respectively, so absent and not-a-number metrics deterministically
fail rather than silently pass.
"""

from __future__ import annotations

import json
import math
import os
import re
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional

from repro.obs.schema import GATE_REPORT_SCHEMA
from repro.qa.manifest import RunManifest

#: Severity ladder, mildest first.
SEVERITIES = ("info", "warn", "high", "critical")
#: Severities whose failures set a non-zero exit code.
FAILING_SEVERITIES = frozenset(("high", "critical"))

#: Directory of the gate specs shipped with the package.
SPEC_DIR = os.path.join(os.path.dirname(__file__), "specs")

_BASELINE_REF = re.compile(r"\bbaseline\b")

#: The only names a check/assertion expression may call.
_ALLOWED_BUILTINS: Dict[str, Any] = {
    "abs": abs,
    "min": min,
    "max": max,
    "len": len,
    "round": round,
    "sum": sum,
    "all": all,
    "any": any,
    "int": int,
    "float": float,
    "str": str,
    "bool": bool,
    "sorted": sorted,
    "isnan": lambda v: isinstance(v, float) and math.isnan(v),
    "isfinite": lambda v: isinstance(v, (int, float))
    and not isinstance(v, bool)
    and math.isfinite(v),
    "math": math,
}


class GateEvaluationError(RuntimeError):
    """A check or assertion expression could not be evaluated."""


def escalate(severity: str) -> str:
    """One step up the severity ladder (``critical`` stays put)."""
    try:
        index = SEVERITIES.index(severity)
    except ValueError:
        return "critical"
    return SEVERITIES[min(index + 1, len(SEVERITIES) - 1)]


def _evaluate(expression: str, env: Mapping[str, Any]) -> Any:
    """Evaluate a restricted expression; raise GateEvaluationError."""
    scope = dict(_ALLOWED_BUILTINS)
    scope.update(env)
    try:
        code = compile(expression, "<gate>", "eval")
        return eval(code, {"__builtins__": {}}, scope)
    except GateEvaluationError:
        raise
    except Exception as exc:
        raise GateEvaluationError(
            f"{type(exc).__name__}: {exc}"
        ) from exc


@dataclass(frozen=True)
class GateQuestion:
    """One declarative promotion question."""

    id: str
    question: str
    check: str
    assertion: str
    severity: str = "high"
    category: str = "general"

    def __post_init__(self) -> None:
        if self.severity not in SEVERITIES:
            raise ValueError(
                f"question {self.id!r}: severity {self.severity!r} not in "
                f"{SEVERITIES}"
            )

    @property
    def needs_baseline(self) -> bool:
        """Whether the assertion compares against a baseline manifest."""
        return bool(_BASELINE_REF.search(self.assertion))

    @classmethod
    def from_dict(cls, doc: Mapping[str, Any]) -> "GateQuestion":
        """Parse one spec-file question entry (required fields checked)."""
        missing = [
            key for key in ("id", "question", "check", "assertion")
            if key not in doc
        ]
        if missing:
            raise ValueError(
                f"gate question missing required field(s) {missing}: {doc!r}"
            )
        return cls(
            id=str(doc["id"]),
            question=str(doc["question"]),
            check=str(doc["check"]),
            assertion=str(doc["assertion"]),
            severity=str(doc.get("severity", "high")),
            category=str(doc.get("category", "general")),
        )


@dataclass(frozen=True)
class GateSpec:
    """A named, versioned collection of gate questions."""

    name: str
    version: str
    questions: tuple
    params: Dict[str, Any] = field(default_factory=dict)
    #: When true, evaluating without a baseline manifest is an error
    #: (the spec is a diff/promotion gate, not a single-run invariant).
    requires_baseline: bool = False

    @classmethod
    def from_dict(cls, doc: Mapping[str, Any]) -> "GateSpec":
        """Parse a spec document; question ids must be unique."""
        questions = tuple(
            GateQuestion.from_dict(q) for q in doc.get("questions", [])
        )
        if not questions:
            raise ValueError("gate spec has no questions")
        ids = [q.id for q in questions]
        dupes = sorted({i for i in ids if ids.count(i) > 1})
        if dupes:
            raise ValueError(f"gate spec has duplicate question ids {dupes}")
        return cls(
            name=str(doc.get("name", "unnamed")),
            version=str(doc.get("version", "1")),
            questions=questions,
            params=dict(doc.get("params", {})),
            requires_baseline=bool(doc.get("requires_baseline", False)),
        )


def available_specs() -> List[str]:
    """Names of the gate specs shipped with the package."""
    try:
        names = os.listdir(SPEC_DIR)
    except OSError:  # pragma: no cover - packaging error
        return []
    return sorted(
        name[:-len(".json")] for name in names if name.endswith(".json")
    )


def load_spec(name_or_path: str) -> GateSpec:
    """Load a gate spec by shipped name (``throughput``) or file path."""
    path = name_or_path
    if not os.path.exists(path):
        shipped = os.path.join(SPEC_DIR, f"{name_or_path}.json")
        if os.path.exists(shipped):
            path = shipped
        else:
            raise FileNotFoundError(
                f"no gate spec {name_or_path!r} (not a file, and not one "
                f"of the shipped specs: {', '.join(available_specs())})"
            )
    with open(path) as fh:
        return GateSpec.from_dict(json.load(fh))


@dataclass
class GateOutcome:
    """The verdict of one question."""

    id: str
    question: str
    check: str
    assertion: str
    #: Effective severity — escalated one level above the declared one
    #: for ``error`` outcomes.
    severity: str
    declared_severity: str
    category: str
    #: ``pass`` / ``fail`` / ``error`` / ``skipped``.
    status: str
    result: Any = None
    baseline: Any = None
    detail: str = ""

    @property
    def gating(self) -> bool:
        """Whether this outcome makes the report fail."""
        return (
            self.status in ("fail", "error")
            and self.severity in FAILING_SEVERITIES
        )

    def to_dict(self) -> Dict[str, Any]:
        """JSON form; non-scalar results are stringified."""
        def scalar(value: Any) -> Any:
            if isinstance(value, float) and not math.isfinite(value):
                return None
            if value is None or isinstance(value, (bool, int, float, str)):
                return value
            return str(value)

        return {
            "id": self.id,
            "question": self.question,
            "check": self.check,
            "assertion": self.assertion,
            "severity": self.severity,
            "declared_severity": self.declared_severity,
            "category": self.category,
            "status": self.status,
            "result": scalar(self.result),
            "baseline": scalar(self.baseline),
            "detail": self.detail,
        }


def _manifest_summary(manifest: Optional[RunManifest]) -> Optional[Dict]:
    if manifest is None:
        return None
    return {
        "kind": manifest.kind,
        "label": manifest.label,
        "engine": manifest.engine,
        "seed": manifest.seed,
        "config_fingerprint": manifest.config_fingerprint,
        "fingerprint": manifest.fingerprint(),
    }


@dataclass
class GateReport:
    """Every outcome of one spec evaluation, plus the verdict."""

    spec: GateSpec
    outcomes: List[GateOutcome]
    candidate: Optional[RunManifest] = None
    baseline: Optional[RunManifest] = None

    @property
    def passed(self) -> bool:
        return not any(o.gating for o in self.outcomes)

    @property
    def exit_code(self) -> int:
        return 0 if self.passed else 1

    def counts(self) -> Dict[str, int]:
        """Outcome tally by status."""
        out = {"pass": 0, "fail": 0, "error": 0, "skipped": 0}
        for o in self.outcomes:
            out[o.status] += 1
        return out

    def to_dict(self) -> Dict[str, Any]:
        """JSON form (:data:`~repro.obs.schema.GATE_REPORT_SCHEMA`)."""
        return {
            "schema": GATE_REPORT_SCHEMA,
            "spec": {
                "name": self.spec.name,
                "version": self.spec.version,
                "params": self.spec.params,
            },
            "passed": self.passed,
            "exit_code": self.exit_code,
            "counts": self.counts(),
            "candidate": _manifest_summary(self.candidate),
            "baseline": _manifest_summary(self.baseline),
            "outcomes": [o.to_dict() for o in self.outcomes],
        }

    def render(self) -> str:
        """Human-readable verdict, one line per question."""
        marks = {
            "pass": "ok  ",
            "fail": "FAIL",
            "error": "ERR ",
            "skipped": "skip",
        }
        lines = []
        for o in self.outcomes:
            line = (
                f"{marks[o.status]} [{o.severity:>8}] "
                f"{self.spec.name}.{o.id}: {o.detail}"
            )
            lines.append(line)
        counts = self.counts()
        verdict = "PASS" if self.passed else "FAIL"
        lines.append(
            f"{verdict} spec={self.spec.name}/{self.spec.version}: "
            f"{counts['pass']} pass, {counts['fail']} fail, "
            f"{counts['error']} error, {counts['skipped']} skipped"
        )
        return "\n".join(lines)


def _check_env(
    manifest: RunManifest, params: Mapping[str, Any]
) -> Dict[str, Any]:
    doc = manifest.to_dict()
    return {
        "metrics": doc["metrics"],
        "manifest": doc,
        "params": dict(params),
    }


def _fmt_value(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:,.4g}"
    if isinstance(value, int):
        return f"{value:,}"
    return repr(value)


def evaluate_question(
    question: GateQuestion,
    candidate: RunManifest,
    baseline: Optional[RunManifest],
    params: Mapping[str, Any],
) -> GateOutcome:
    """Evaluate one question over a manifest (pair when it needs one)."""

    def outcome(status: str, severity: str, **kw: Any) -> GateOutcome:
        return GateOutcome(
            id=question.id,
            question=question.question,
            check=question.check,
            assertion=question.assertion,
            severity=severity,
            declared_severity=question.severity,
            category=question.category,
            status=status,
            **kw,
        )

    if question.needs_baseline and baseline is None:
        return outcome(
            "skipped", question.severity,
            detail="needs a baseline manifest; none given",
        )

    try:
        result = _evaluate(question.check, _check_env(candidate, params))
    except GateEvaluationError as exc:
        return outcome(
            "error", escalate(question.severity),
            detail=f"check failed on candidate: {exc} "
                   f"(severity escalated from {question.severity})",
        )

    baseline_result: Any = None
    if question.needs_baseline:
        assert baseline is not None
        try:
            baseline_result = _evaluate(
                question.check, _check_env(baseline, params)
            )
        except GateEvaluationError as exc:
            return outcome(
                "error", escalate(question.severity), result=result,
                detail=f"check failed on baseline: {exc} "
                       f"(severity escalated from {question.severity})",
            )

    env = {
        "result": result,
        "baseline": baseline_result,
        "metrics": candidate.to_dict()["metrics"],
        "manifest": candidate.to_dict(),
        "params": dict(params),
    }
    try:
        verdict = bool(_evaluate(question.assertion, env))
    except GateEvaluationError as exc:
        return outcome(
            "error", escalate(question.severity),
            result=result, baseline=baseline_result,
            detail=f"assertion failed to evaluate: {exc} "
                   f"(severity escalated from {question.severity})",
        )

    detail = f"result={_fmt_value(result)}"
    if question.needs_baseline:
        detail += f" baseline={_fmt_value(baseline_result)}"
    detail += f" — {question.assertion!r} is {verdict}"
    return outcome(
        "pass" if verdict else "fail",
        question.severity,
        result=result,
        baseline=baseline_result,
        detail=detail,
    )


def evaluate_spec(
    spec: GateSpec,
    candidate: RunManifest,
    baseline: Optional[RunManifest] = None,
    params: Optional[Mapping[str, Any]] = None,
) -> GateReport:
    """Evaluate every question of ``spec``; returns the verdict report.

    ``params`` entries override the spec's own ``params`` defaults
    (CLI ``--param`` flags land here).
    """
    if spec.requires_baseline and baseline is None:
        raise ValueError(
            f"gate spec {spec.name!r} requires a (baseline, candidate) "
            f"pair; no baseline manifest given"
        )
    merged = dict(spec.params)
    if params:
        unknown = sorted(set(params) - set(merged)) if merged else []
        if merged and unknown:
            raise ValueError(
                f"unknown param override(s) {unknown} for spec "
                f"{spec.name!r} (spec params: {sorted(merged)})"
            )
        merged.update(params)
    outcomes = [
        evaluate_question(question, candidate, baseline, merged)
        for question in spec.questions
    ]
    return GateReport(
        spec=spec, outcomes=outcomes, candidate=candidate, baseline=baseline
    )
