"""The canonical run manifest every artifact-emitting layer stamps.

A :class:`RunManifest` is one self-describing JSON document
(:data:`~repro.obs.schema.RUN_MANIFEST_SCHEMA`) answering, for a
finished run: *what exactly ran* (config fingerprint, engine, seed,
trace content digests), *what it produced* (artifact paths with content
digests and sizes), and *what the headline numbers were* (a flat
``metrics`` map of scalars).  Manifests are the substrate of the gate
engine (:mod:`repro.qa.gates`): a gate spec never touches raw artifacts,
only manifests, so every layer is promoted through the same harness.

Determinism contract: ``to_dict`` is canonical — keys are emitted in a
fixed order, non-finite floats are replaced by ``None`` (manifests stay
strict JSON), and the ``fingerprint`` field is a SHA-256 over the
canonical form of everything else.  ``load_manifest(write_manifest(m))``
round-trips to an equal manifest and re-serialises byte-identically;
the round-trip suite pins this.
"""

from __future__ import annotations

import hashlib
import json
import math
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence

from repro.obs.schema import RUN_MANIFEST_SCHEMA, validate
from repro.obs.schema import RUN_MANIFEST_JSON_SCHEMA


def _sanitise(value: Any) -> Any:
    """JSON-safe copy: non-finite floats become ``None`` (strict JSON)."""
    if isinstance(value, float) and not math.isfinite(value):
        return None
    if isinstance(value, dict):
        return {str(k): _sanitise(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_sanitise(v) for v in value]
    return value


def config_fingerprint(config: Any) -> str:
    """SHA-256 of the full simulation configuration.

    Hashes :func:`repro.params.config_to_dict` plus the run-control
    fields it intentionally omits (``check_coherence``, ``max_cycles``)
    — the same notion of "the whole input" the sweep-cache digest uses,
    minus the traces (those get their own digests in the manifest).
    """
    from repro.params import config_to_dict

    payload = config_to_dict(config)
    payload["check_coherence"] = config.check_coherence
    payload["max_cycles"] = config.max_cycles
    return hashlib.sha256(
        json.dumps(payload, sort_keys=True).encode()
    ).hexdigest()


def artifact_ref(path: str, base_dir: Optional[str] = None) -> Dict[str, Any]:
    """Content reference for one produced file: path, sha256, bytes.

    ``base_dir`` relativises the recorded path (manifests travel across
    machines as CI artifacts; absolute runner paths would not).
    """
    digest = hashlib.sha256()
    size = 0
    with open(path, "rb") as fh:
        while True:
            chunk = fh.read(1 << 20)
            if not chunk:
                break
            size += len(chunk)
            digest.update(chunk)
    recorded = path
    if base_dir is not None:
        try:
            recorded = os.path.relpath(path, base_dir)
        except ValueError:  # pragma: no cover - windows drive mismatch
            recorded = path
    return {"path": recorded, "sha256": digest.hexdigest(), "bytes": size}


def stats_metrics(stats: Mapping[str, Any]) -> Dict[str, Any]:
    """Flatten a :func:`repro.runner.stats_to_dict` result to gate metrics.

    Aggregates the per-core lists into the scalars gate assertions care
    about: cycle identity, throughput-relevant totals, and hit-rate
    floors.
    """
    cores = stats.get("cores", [])
    hits = sum(c.get("hits", 0) for c in cores)
    misses = sum(c.get("misses", 0) for c in cores)
    accesses = hits + misses
    return {
        "final_cycle": stats.get("final_cycle"),
        "execution_time": stats.get("execution_time"),
        "bus_utilization": stats.get("bus_utilization"),
        "timer_expiries": stats.get("timer_expiries"),
        "writebacks": stats.get("writebacks"),
        "mode_switches": stats.get("mode_switches"),
        "hits": hits,
        "misses": misses,
        "hit_rate": hits / accesses if accesses else None,
        "max_request_latency": max(
            (c.get("max_request_latency", 0) for c in cores), default=0
        ),
        "total_memory_latency": sum(
            c.get("total_memory_latency", 0) for c in cores
        ),
    }


@dataclass
class RunManifest:
    """One run's identity, artifacts and key metrics (JSON document)."""

    kind: str
    label: str
    engine: Optional[str] = None
    seed: Optional[int] = None
    config_fingerprint: Optional[str] = None
    #: Content digests of the input traces, in core order.
    traces: List[str] = field(default_factory=list)
    #: Flat map of scalar metrics — the namespace gate checks evaluate
    #: over.  Non-finite floats are stored as ``None``.
    metrics: Dict[str, Any] = field(default_factory=dict)
    #: Content references (:func:`artifact_ref`) of every produced file.
    artifacts: List[Dict[str, Any]] = field(default_factory=list)
    #: Free-form provenance (tool versions, hosts); not fingerprinted.
    environment: Dict[str, Any] = field(default_factory=dict)

    def fingerprint(self) -> str:
        """SHA-256 over the canonical body (environment excluded)."""
        body = self._body()
        body.pop("environment", None)
        return hashlib.sha256(
            json.dumps(body, sort_keys=True).encode()
        ).hexdigest()

    def _body(self) -> Dict[str, Any]:
        return {
            "schema": RUN_MANIFEST_SCHEMA,
            "kind": self.kind,
            "label": self.label,
            "engine": self.engine,
            "seed": self.seed,
            "config_fingerprint": self.config_fingerprint,
            "traces": list(self.traces),
            "metrics": _sanitise(self.metrics),
            "artifacts": _sanitise(self.artifacts),
            "environment": _sanitise(self.environment),
        }

    def to_dict(self) -> Dict[str, Any]:
        """Canonical JSON-compatible form, fingerprint included."""
        body = self._body()
        body["fingerprint"] = self.fingerprint()
        return body

    @classmethod
    def from_dict(cls, doc: Mapping[str, Any]) -> "RunManifest":
        """Rebuild a manifest from its JSON form (schema-checked)."""
        if doc.get("schema") != RUN_MANIFEST_SCHEMA:
            raise ValueError(
                f"not a run manifest: schema tag {doc.get('schema')!r} "
                f"(expected {RUN_MANIFEST_SCHEMA!r})"
            )
        errors = validate(dict(doc), RUN_MANIFEST_JSON_SCHEMA)
        if errors:
            raise ValueError(
                "invalid run manifest: " + "; ".join(errors[:5])
            )
        manifest = cls(
            kind=doc["kind"],
            label=doc["label"],
            engine=doc.get("engine"),
            seed=doc.get("seed"),
            config_fingerprint=doc.get("config_fingerprint"),
            traces=list(doc.get("traces", [])),
            metrics=dict(doc.get("metrics", {})),
            artifacts=[dict(a) for a in doc.get("artifacts", [])],
            environment=dict(doc.get("environment", {})),
        )
        stored = doc.get("fingerprint")
        if stored is not None and stored != manifest.fingerprint():
            raise ValueError(
                f"run manifest fingerprint mismatch: document says "
                f"{stored[:12]}…, content hashes to "
                f"{manifest.fingerprint()[:12]}… (edited by hand?)"
            )
        return manifest


def build_manifest(
    kind: str,
    label: str,
    *,
    config: Any = None,
    traces: Sequence[Any] = (),
    stats: Optional[Mapping[str, Any]] = None,
    metrics: Optional[Mapping[str, Any]] = None,
    engine: Optional[str] = None,
    seed: Optional[int] = None,
    artifact_paths: Sequence[str] = (),
    environment: Optional[Mapping[str, Any]] = None,
) -> RunManifest:
    """Assemble a manifest from live objects.

    ``config`` is fingerprinted via :func:`config_fingerprint`,
    ``traces`` via their ``content_digest()``, ``stats`` (a
    ``stats_to_dict`` result) is flattened through :func:`stats_metrics`,
    and ``metrics`` entries are merged on top.  ``artifact_paths`` are
    digested from disk.
    """
    merged: Dict[str, Any] = {}
    if stats is not None:
        merged.update(stats_metrics(stats))
    if metrics is not None:
        merged.update(metrics)
    return RunManifest(
        kind=kind,
        label=label,
        engine=engine,
        seed=seed,
        config_fingerprint=(
            config_fingerprint(config) if config is not None else None
        ),
        traces=[t.content_digest() for t in traces],
        metrics=merged,
        artifacts=[artifact_ref(p) for p in artifact_paths],
        environment=dict(environment or {}),
    )


def write_manifest(manifest: RunManifest, path: str) -> str:
    """Write the canonical JSON form; returns the manifest fingerprint."""
    doc = manifest.to_dict()
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True, allow_nan=False)
        fh.write("\n")
    return doc["fingerprint"]


def load_manifest(path: str) -> RunManifest:
    """Load and schema-check a manifest file."""
    with open(path) as fh:
        doc = json.load(fh)
    return RunManifest.from_dict(doc)
