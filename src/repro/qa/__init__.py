"""Run manifests, declarative quality gates, and promotion checks.

Every artifact-emitting layer (``cohort simulate``/``fig5``/``fig6``/
``fig7``/``optimize``/``faults``/``serve``, the benchmark scripts)
stamps its outputs with one canonical :class:`RunManifest` — a
self-describing, schema-versioned JSON document carrying the config
fingerprint, engine, seed, trace digests, artifact content digests and
the run's key metrics.  The :mod:`repro.qa.gates` engine then evaluates
declarative question specs (``id``/``question``/``check``/``assertion``/
``severity``/``category``) over one manifest or a (baseline, candidate)
pair and renders a verdict report — ``cohort gate run|diff|promote``
and CI gate on its exit code.

Entry points:

* :class:`RunManifest` / :func:`write_manifest` / :func:`load_manifest`
  — build, persist and reload manifests (schema-validated),
* :func:`config_fingerprint` / :func:`artifact_ref` /
  :func:`stats_metrics` — the manifest building blocks,
* :class:`GateSpec` / :func:`load_spec` — declarative question specs
  (shipped specs under ``repro/qa/specs/``),
* :func:`evaluate_spec` / :class:`GateReport` — the gate engine and its
  verdict report.
"""

from repro.qa.gates import (
    FAILING_SEVERITIES,
    SEVERITIES,
    GateOutcome,
    GateQuestion,
    GateReport,
    GateSpec,
    available_specs,
    evaluate_spec,
    load_spec,
)
from repro.qa.manifest import (
    RunManifest,
    artifact_ref,
    build_manifest,
    config_fingerprint,
    load_manifest,
    stats_metrics,
    write_manifest,
)

__all__ = [
    "FAILING_SEVERITIES",
    "SEVERITIES",
    "GateOutcome",
    "GateQuestion",
    "GateReport",
    "GateSpec",
    "RunManifest",
    "artifact_ref",
    "available_specs",
    "build_manifest",
    "config_fingerprint",
    "evaluate_spec",
    "load_manifest",
    "load_spec",
    "stats_metrics",
    "write_manifest",
]
