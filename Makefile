# Convenience targets for the CoHoRT reproduction.

.PHONY: install test bench bench-throughput examples all-experiments lint clean

install:
	pip install -e . --no-build-isolation

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only

# Simulator throughput only; writes benchmarks/out/BENCH_throughput.json
# so the perf trajectory is tracked across PRs.
bench-throughput:
	pytest benchmarks/test_sim_throughput.py --benchmark-only -s

examples:
	@for ex in examples/*.py; do \
		echo "== $$ex"; python $$ex > /dev/null || exit 1; \
	done; echo "all examples ok"

all-experiments:
	cohort all -o reproduction_report.txt

clean:
	rm -rf benchmarks/out .pytest_cache .hypothesis \
		$$(find . -name __pycache__ -type d)
