"""Figure 5a: total WCML with all four cores critical.

Paper shape: experimental WCML under the analytical bound for every
system (predictability); CoHoRT's bounds ~2.15x tighter than PCC's on
average; PENDULUM's bounds the loosest (~16x worse than CoHoRT).
"""

from repro.experiments import FIG5_CONFIGS, run_wcml_experiment

from conftest import BENCH_GA, BENCH_SCALE, BENCH_SUITE, emit, run_once


def test_fig5a_wcml_all_critical(benchmark):
    def run():
        return [
            run_wcml_experiment(
                name, FIG5_CONFIGS["all_cr"], scale=BENCH_SCALE, seed=0,
                ga_config=BENCH_GA,
            )
            for name in BENCH_SUITE
        ]

    experiments = run_once(benchmark, run)
    blocks = []
    for exp in experiments:
        blocks.append(exp.to_table())
        blocks.append(exp.to_chart())
        blocks.append(
            f"bound ratios vs CoHoRT: PCC "
            f"{exp.bound_ratio('PCC', 'CoHoRT'):.2f}x, "
            f"PENDULUM {exp.bound_ratio('PENDULUM', 'CoHoRT'):.2f}x"
        )
    emit(
        "fig5a",
        "\n\n".join(blocks),
        payload={"experiments": [e.to_dict() for e in experiments]},
    )

    for exp in experiments:
        # Predictability: every measured WCML under its analytical bound.
        for system in exp.systems:
            assert system.within_bounds(), f"{exp.benchmark}/{system.name}"
        # CoHoRT tightest, PENDULUM loosest (the paper's ordering).
        pcc_ratio = exp.bound_ratio("PCC", "CoHoRT")
        pend_ratio = exp.bound_ratio("PENDULUM", "CoHoRT")
        assert pcc_ratio > 1.0, exp.benchmark
        assert pend_ratio > pcc_ratio, exp.benchmark
        assert pend_ratio > 3.0, exp.benchmark
