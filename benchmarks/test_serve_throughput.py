"""Load generator for ``cohort serve``: batching + caching amortisation.

Eight concurrent clients hammer one in-process serve instance with
overlapping sweep submissions and the test asserts the serving layer's
contract end to end:

* every result is byte-identical to a direct ``SweepRunner.run`` of the
  same jobs (the service adds batching, never noise);
* duplicate submissions are served from the shared result cache (hit
  rate asserted);
* submissions coalesce into multi-job batches (amortisation);
* a saturated admission queue answers with backpressure (429 +
  Retry-After) instead of accepting unbounded work.
"""

import json
import threading

from repro.runner import SweepRunner
from repro.serve import BackpressureError, ServeClient, ServerThread

from conftest import emit, run_once

#: Each client submits every one of these (overlapping) jobs.
N_CLIENTS = 8
THETA_SETS = [
    [60, 20, 20, 20],
    [120, 20, 20, 20],
    [120, 60, 20, 20],
    [120, 60, 60, 20],
    [120, 60, 60, 60],
    [300, 60, 60, 60],
]
SPEC_SCALE = 0.1


def specs():
    return [
        {"benchmark": "fft", "thetas": thetas, "scale": SPEC_SCALE, "seed": 0}
        for thetas in THETA_SETS
    ]


def test_serve_throughput(benchmark, tmp_path):
    cache = str(tmp_path / "serve-cache")
    runner = SweepRunner(jobs=2, cache_dir=cache, mp_context="fork")

    def drive():
        with ServerThread(
            runner=runner, max_batch=16, batch_window=0.05, queue_limit=128
        ) as server:
            url = server.base_url
            results = [None] * N_CLIENTS
            errors = []

            def client_main(index):
                try:
                    client = ServeClient(url, timeout=60.0)
                    records = client.submit_and_wait(
                        specs(), max_retries=20, timeout=600
                    )
                    results[index] = [r["result"] for r in records]
                except Exception as exc:  # surfaced after join
                    errors.append((index, exc))

            threads = [
                threading.Thread(target=client_main, args=(i,))
                for i in range(N_CLIENTS)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=600)
            assert not errors, f"client failures: {errors}"
            metrics = ServeClient(url, timeout=30.0).metrics()
        return results, metrics

    results, metrics = run_once(benchmark, drive)

    # 1. Byte-identical to a direct SweepRunner.run of the same jobs.
    from repro.serve import JobSpec

    direct_jobs = [JobSpec.from_dict(doc).to_sweep_job() for doc in specs()]
    direct = SweepRunner(jobs=1, cache_dir=None).run(direct_jobs)
    direct_bytes = json.dumps(direct, sort_keys=True)
    for client_results in results:
        assert json.dumps(client_results, sort_keys=True) == direct_bytes

    # 2. Duplicate submissions served from the shared cache: 48 jobs
    #    submitted, only the 6 distinct ones simulated.
    service = metrics["service"]
    runner_tel = metrics["runner"]
    total_jobs = N_CLIENTS * len(THETA_SETS)
    assert service["jobs_completed"] == total_jobs
    assert runner_tel["cache_misses"] == len(THETA_SETS)
    assert runner_tel["cache_hits"] == total_jobs - len(THETA_SETS)
    assert runner_tel["cache_hit_rate"] >= 0.8

    # 3. Batching amortisation: strictly fewer batches than jobs.
    assert service["batches"] < total_jobs
    assert service["jobs_dispatched"] == total_jobs

    emit(
        "serve_throughput",
        "\n".join(
            [
                f"serve throughput: {N_CLIENTS} clients x "
                f"{len(THETA_SETS)} jobs = {total_jobs} submissions",
                f"  batches={service['batches']} "
                f"(max_batch={service['max_batch']}) "
                f"p95_batch<={service['batch_size_p95']}",
                f"  cache: hits={runner_tel['cache_hits']} "
                f"misses={runner_tel['cache_misses']} "
                f"hit_rate={runner_tel['cache_hit_rate']:.3f}",
                f"  p95_queue_wait_ms<={service['queue_wait_ms_p95']}",
            ]
        ),
        payload={"service": service, "runner": runner_tel},
    )


def test_serve_backpressure(benchmark):
    # A deliberately tiny queue in front of a serial runner: flooding it
    # must produce 429s, and honouring Retry-After must land every job.
    runner = SweepRunner(jobs=1, cache_dir=None)

    def drive():
        with ServerThread(
            runner=runner, max_batch=1, batch_window=0.0, queue_limit=2
        ) as server:
            client = ServeClient(server.base_url, timeout=60.0)
            rejections = 0
            accepted = []
            flood = [
                {"benchmark": "fft", "thetas": [60, 20, 20, 20],
                 "scale": SPEC_SCALE, "seed": seed}
                for seed in range(10)
            ]
            for spec in flood:
                try:
                    accepted.extend(client.submit([spec]))
                except BackpressureError as exc:
                    rejections += 1
                    assert exc.retry_after > 0
                    accepted.extend(
                        client.submit([spec], max_retries=100, backoff=0.05)
                    )
            records = client.wait(
                [doc["id"] for doc in accepted], timeout=600
            )
            metrics = client.metrics()
        return rejections, records, metrics

    rejections, records, metrics = run_once(benchmark, drive)
    assert rejections >= 1, "flood never saw backpressure"
    assert all(r["status"] == "done" for r in records.values())
    assert metrics["service"]["jobs_rejected"] >= rejections
    assert metrics["service"]["max_queue_depth"] <= 2
    emit(
        "serve_backpressure",
        f"serve backpressure: {rejections} rejection(s) while flooding a "
        f"queue_limit=2 server with 10 jobs; all jobs completed after "
        f"honouring Retry-After "
        f"(max_queue_depth={metrics['service']['max_queue_depth']})",
    )
