"""Requirement-tightening headroom per mode (sensitivity analysis).

Quantifies the Figure-7 story across the whole mode ladder: how much
the most-critical core's requirement can tighten (relative to its
mode-1 bound) before each mode becomes infeasible.  The paper's stage
factors (1.5× then cumulative 2.7×) must fall inside the ladder.
"""

from repro.params import LatencyParams, cohort_config
from repro.analysis import build_profiles, tightening_headroom
from repro.experiments import format_table
from repro.mcs import Task, TaskSet
from repro.opt import OptimizationEngine
from repro.workloads import splash_traces

from conftest import BENCH_GA, BENCH_SCALE, emit, run_once

CRITICALITIES = (4, 3, 2, 1)


def test_requirement_tightening_headroom(benchmark):
    def run():
        traces = splash_traces("fft", 4, scale=BENCH_SCALE, seed=0)
        profiles = build_profiles(traces, cohort_config([1] * 4).l1)
        engine = OptimizationEngine(profiles, LatencyParams(), BENCH_GA)
        table = engine.optimize_modes(
            list(CRITICALITIES), {m: [None] * 4 for m in (1, 2, 3, 4)}
        )
        tasks = TaskSet(
            tuple(
                Task(f"tau_{i}", l, traces[i])
                for i, l in enumerate(CRITICALITIES)
            )
        )
        headroom = tightening_headroom(
            tasks, table, profiles, LatencyParams(), core_id=0
        )
        return table, headroom

    table, headroom = run_once(benchmark, run)
    rows = [[f"mode {m}", str(table.thetas[m]), f"{headroom[m]:.2f}x"]
            for m in sorted(headroom)]
    emit(
        "headroom",
        format_table(
            ["mode", "Θ", "max tightening of Γ_0"],
            rows,
            title="Requirement-tightening headroom of c0 per mode (fft)",
        ),
    )
    # Mode 1 is the baseline; escalation must buy real headroom.
    assert headroom[1] == 1.0
    assert headroom[4] > headroom[1]
    # The paper's cumulative stage-3 factor (1.5 * 1.8 = 2.7x) fits within
    # the ladder's top mode.
    assert headroom[4] > 2.7
