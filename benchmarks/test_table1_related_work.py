"""Table I: predictable-coherence works vs the four MCS challenges."""

from repro.experiments import cohort_addresses_all, render_table_i

from conftest import emit, run_once


def test_table1_related_work(benchmark):
    text = run_once(benchmark, render_table_i)
    emit("table1", text)
    assert "CoHoRT" in text
    assert cohort_addresses_all()
