"""Paper-scale soak run: fft at the size the paper reports (~47k requests).

The evaluation section says fft has about 47k requests.  This benchmark
runs the full pipeline — generation, GA optimization, contended
simulation, bounds — at that scale (fft at scale 10 ≈ 43k requests
across the four cores) and asserts the predictability properties hold
unchanged.  It also documents the wall-clock cost of a paper-sized run.
"""

from repro.params import LatencyParams, cohort_config
from repro.analysis import build_profiles, cohort_bounds, wcl_miss
from repro.experiments import format_table
from repro.opt import GAConfig, OptimizationEngine
from repro.sim.system import run_simulation
from repro.workloads import splash_traces

from conftest import emit, run_once


def test_paper_scale_fft_soak(benchmark):
    def run():
        traces = splash_traces("fft", 4, scale=10.0, seed=0)
        config = cohort_config([1] * 4)
        profiles = build_profiles(traces, config.l1)
        engine = OptimizationEngine(
            profiles, LatencyParams(),
            GAConfig(population_size=16, generations=10, seed=1),
        )
        thetas = engine.optimize(timed=[True] * 4).thetas
        stats = run_simulation(
            cohort_config(thetas), traces, record_latencies=False
        )
        bounds = cohort_bounds(thetas, profiles, config.latencies)
        return traces, thetas, stats, bounds

    traces, thetas, stats, bounds = run_once(benchmark, run)
    total_requests = sum(len(t) for t in traces)
    sw = LatencyParams().slot_width
    rows = [
        [
            f"c{c.core_id}",
            c.accesses,
            c.hits,
            c.total_memory_latency,
            b.wcml,
            c.max_request_latency,
            wcl_miss(thetas, c.core_id, sw),
        ]
        for c, b in zip(stats.cores, bounds)
    ]
    emit(
        "scale_soak",
        format_table(
            ["core", "accesses", "hits", "WCML meas", "WCML bound",
             "max lat", "WCL bound"],
            rows,
            title=f"Paper-scale fft soak: {total_requests:,} requests, "
            f"Θ={thetas}, {stats.final_cycle:,} cycles",
        ),
    )
    assert total_requests > 40_000  # comparable to the paper's 47k
    for core, bound in zip(stats.cores, bounds):
        assert core.total_memory_latency <= bound.wcml
        assert core.max_request_latency <= wcl_miss(thetas, core.core_id, sw)
