"""Shared workload/population builders for the throughput benchmarks.

Used by both ``test_sim_throughput.py`` (which records the artifact)
and ``check_throughput_gate.py`` (which re-runs it in CI), so the two
can never drift apart on what exactly is being measured.
"""

from __future__ import annotations

import dataclasses
import statistics
import time
from typing import Any, Dict, List

import numpy as np

from repro.params import MSI_THETA, SimConfig, cohort_config
from repro.sim.lockstep import run_lockstep_batch
from repro.sim.system import run_simulation
from repro.workloads import timer_sweep

#: Size of the lock-step sweep population.
LOCKSTEP_CONFIGS = 64
#: timer_sweep shape: (cores, accesses per core, seed).
LOCKSTEP_WORKLOAD = (4, 40_000, 0)
#: θ values the random per-core draw picks from — the grid a real sweep
#: or GA generation explores, MSI degradation included.
LOCKSTEP_THETA_GRID = (5, 17, 60, 200, 1000, MSI_THETA)
#: RNG seed of the population draw (pins the 64 configs forever).
LOCKSTEP_POPULATION_SEED = 42
#: Interleaved sequential-vs-batch measurement rounds.
LOCKSTEP_ROUNDS = 5


def lockstep_traces():
    cores, accesses, seed = LOCKSTEP_WORKLOAD
    return timer_sweep(cores, accesses, seed=seed)


def lockstep_configs() -> List[SimConfig]:
    """The pinned 64-config θ-sweep population over one trace set."""
    rng = np.random.default_rng(LOCKSTEP_POPULATION_SEED)
    base = cohort_config([60] * LOCKSTEP_WORKLOAD[0])
    grid = LOCKSTEP_THETA_GRID
    configs = []
    for _ in range(LOCKSTEP_CONFIGS):
        thetas = [
            int(grid[rng.integers(0, len(grid))]) for _ in base.cores
        ]
        cores = tuple(
            dataclasses.replace(cc, theta=th)
            for cc, th in zip(base.cores, thetas)
        )
        configs.append(dataclasses.replace(base, cores=cores))
    return configs


def measure_lockstep(rounds: int = LOCKSTEP_ROUNDS) -> Dict[str, Any]:
    """Measure the pinned 64-config sweep: sequential vs lock-step batch.

    Interleaved median-of-``rounds`` on CPU time, for the same reason
    the telemetry-overhead number is measured that way: shared runners
    drift in speed over the tens of seconds the sequential side takes,
    so a single sequential-then-batch wall-clock pair routinely swings
    the speedup by 20%+ in either direction.  Interleaving puts both
    engines under the same machine conditions within each round; the
    speedup is per-round CPU-time ratio, medianed across rounds.

    Asserts the batch is cycle-identical to the sequential runs every
    round, and returns the artifact-shaped ``lockstep`` payload.
    """
    traces = lockstep_traces()
    configs = lockstep_configs()
    per_run = sum(len(t) for t in traces)
    swept = per_run * len(configs)
    final_cycles: List[int] = []
    speedups: List[float] = []
    seq_cpu: List[float] = []
    seq_wall: List[float] = []
    batch_cpu: List[float] = []
    batch_wall: List[float] = []
    # Untimed warm-up: the adaptive interpreter specialises the
    # lock-step-only code paths over the first pass (a cold first batch
    # runs ~20% slower), and this also pre-populates the shared decode
    # cache for both engines.
    run_lockstep_batch(configs, traces)
    for _ in range(rounds):
        c0, w0 = time.process_time(), time.perf_counter()
        sequential = [run_simulation(cfg, traces) for cfg in configs]
        c1, w1 = time.process_time(), time.perf_counter()
        batch = run_lockstep_batch(configs, traces)
        c2, w2 = time.process_time(), time.perf_counter()
        final_cycles = [s.final_cycle for s in sequential]
        assert [s.final_cycle for s in batch] == final_cycles, (
            "lock-step batch diverged from sequential fast-path cycles"
        )
        seq_cpu.append(c1 - c0)
        seq_wall.append(w1 - w0)
        batch_cpu.append(c2 - c1)
        batch_wall.append(w2 - w1)
        speedups.append((c1 - c0) / (c2 - c1))
    return {
        "workload": "timer_sweep 4x40000 seed=0",
        "configs": len(configs),
        "accesses_per_config": per_run,
        "total_accesses_swept": swept,
        "rounds": rounds,
        "final_cycles": final_cycles,
        "sequential": {
            "cpu_seconds": statistics.median(seq_cpu),
            "wall_seconds": statistics.median(seq_wall),
            "accesses_per_second": swept / statistics.median(seq_cpu),
        },
        "batch": {
            "cpu_seconds": statistics.median(batch_cpu),
            "wall_seconds": statistics.median(batch_wall),
            "accesses_per_second": swept / statistics.median(batch_cpu),
        },
        "speedups": speedups,
        "speedup": statistics.median(speedups),
    }
