"""Figure 5c: total WCML with 1 critical + 3 non-critical cores.

Paper shape: the strongest CoHoRT win (~18x tighter bounds).  With all
co-runners on MSI the Cr core's per-request bound collapses to the
arbitration latency (no θ terms in Equation 1), and its own timer can
grow essentially freely to maximise guaranteed hits.
"""

from repro.experiments import FIG5_CONFIGS, run_wcml_experiment
from repro.analysis import wcl_miss
from repro.params import LatencyParams

from conftest import BENCH_GA, BENCH_SCALE, BENCH_SUITE, emit, run_once


def test_fig5c_wcml_1cr_3ncr(benchmark):
    critical = FIG5_CONFIGS["1cr_3ncr"]

    def run():
        return [
            run_wcml_experiment(
                name, critical, scale=BENCH_SCALE, seed=0, ga_config=BENCH_GA
            )
            for name in BENCH_SUITE
        ]

    experiments = run_once(benchmark, run)
    sw = LatencyParams().slot_width
    blocks = []
    for exp in experiments:
        blocks.append(exp.to_table())
        blocks.append(
            f"bound ratio PENDULUM/CoHoRT (c0): "
            f"{exp.bound_ratio('PENDULUM', 'CoHoRT'):.2f}x"
        )
    emit("fig5c", "\n\n".join(blocks))

    ratios = []
    for exp in experiments:
        for system in exp.systems:
            assert system.within_bounds(), f"{exp.benchmark}/{system.name}"
        cohort = exp.system("CoHoRT")
        # With MSI co-runners, c0's WCL is exactly N*SW (pure arbitration).
        assert wcl_miss(cohort.thetas, 0, sw) == 4 * sw
        ratio = exp.bound_ratio("PENDULUM", "CoHoRT")
        ratios.append(ratio)
        assert ratio > 1.5, exp.benchmark
    # The strongest panel on average (paper: ~18x; workload-dependent).
    geomean = 1.0
    for r in ratios:
        geomean *= r
    geomean **= 1.0 / len(ratios)
    assert geomean > 3.0
