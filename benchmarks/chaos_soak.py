"""Chaos soak for ``cohort fleet``: kill it, hang it, corrupt its disk.

Runs a real shard fleet (an in-process router supervising real
``cohort serve`` subprocesses sharing one budgeted cache directory) and
injects the failure modes the fleet claims to survive, while a steady
workload flows through it:

* ``SIGKILL`` on a shard with accepted jobs in flight (at least twice),
* ``SIGSTOP`` on a shard — a hung process that still owns a socket —
  until the heartbeat deadline declares it dead and the supervisor
  replaces it,
* disk faults in the shared result cache: entries truncated and
  overwritten with garbage, which the hardened cache tier must
  quarantine rather than serve or crash on.

Throughout, a background prober samples router ``/healthz``
availability.  After the soak the script settles the fleet (every shard
healthy again), then measures:

* **durability** — every 202-accepted job reached ``done`` (zero lost,
  zero failed), every write-ahead journal is empty,
* **correctness** — every result is byte-identical to a direct
  ``SweepRunner.run`` of the same spec on a private cache,
* **recovery** — every killed/hung shard came back, worst recovery
  time bounded, router availability above the floor,
* **cache hygiene** — corrupt entries quarantined with counters, total
  size within the configured budget.

The verdict lives in the shipped gate spec
(``repro/qa/specs/chaos.json``): this script only measures, writes a
``kind="chaos"`` run manifest plus artefacts (fleet metrics snapshot,
Prometheus scrape, oplog, verdict report) into the artifact directory,
and exits with the gate's verdict.

    PYTHONPATH=src python benchmarks/chaos_soak.py [artifact_dir]
"""

import json
import os
import shutil
import signal
import sys
import threading
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.obs import parse_prometheus_text  # noqa: E402
from repro.obs.validate import validate_file  # noqa: E402
from repro.qa import build_manifest, evaluate_spec, load_spec  # noqa: E402
from repro.qa import write_manifest  # noqa: E402
from repro.runner import SweepRunner  # noqa: E402
from repro.serve import FleetThread, ServeClient  # noqa: E402
from repro.serve.service import JobSpec  # noqa: E402

ART_DIR = sys.argv[1] if len(sys.argv) > 1 else "chaos-artifacts"

#: The soak workload: unique tiny jobs (distinct digests) so cache
#: entries, journal entries and results are all attributable.
SPECS = [
    {"benchmark": "fft", "thetas": [60 + 10 * i, 20, 20, 20],
     "scale": 0.05, "seed": 0}
    for i in range(8)
]

SHARDS = 3
WAVES = 3
SHARD_KILLS_PLANNED = 2
DISK_FAULTS_PLANNED = 2
SETTLE_TIMEOUT = 90.0
WAIT_TIMEOUT = 300.0


def fail(message):
    """Harness machinery broke — not a gate verdict, just die."""
    print(f"chaos_soak: FAIL — {message}", file=sys.stderr)
    sys.exit(1)


class AvailabilityProber(threading.Thread):
    """Samples router ``/healthz`` in the background; 200 == available."""

    def __init__(self, base_url, interval=0.2):
        super().__init__(daemon=True)
        self.client = ServeClient(base_url, timeout=2.0)
        self.interval = interval
        self.samples = 0
        self.successes = 0
        self._halt = threading.Event()

    def run(self):
        while not self._halt.is_set():
            self.samples += 1
            try:
                self.client.healthz()
                self.successes += 1
            except Exception:
                pass
            self._halt.wait(self.interval)

    def stop(self):
        self._halt.set()
        self.join(timeout=5)

    @property
    def availability(self):
        return self.successes / self.samples if self.samples else 0.0


def compute_expected():
    """Direct ``SweepRunner.run`` ground truth, on a private cache.

    Also returns the mean on-disk entry size so the fleet's cache
    budget can be set tight enough to force evictions without starving
    the working set.
    """
    cache_dir = os.path.join(ART_DIR, "reference-cache")
    runner = SweepRunner(jobs=1, cache_dir=cache_dir, engine="lockstep")
    jobs = [JobSpec.from_dict(spec).to_sweep_job() for spec in SPECS]
    results = runner.run(jobs)
    expected = {
        json.dumps(spec, sort_keys=True): json.dumps(result, sort_keys=True)
        for spec, result in zip(SPECS, results)
    }
    sizes = [
        os.path.getsize(os.path.join(cache_dir, name))
        for name in os.listdir(cache_dir)
        if name.endswith(".json")
    ]
    mean_size = sum(sizes) // max(1, len(sizes))
    return expected, mean_size


def submit_wave(client, label):
    """Submit every spec once; returns the accepted (id, spec) pairs."""
    accepted = client.submit(SPECS, max_retries=20)
    if len(accepted) != len(SPECS):
        fail(f"{label}: accepted {len(accepted)}/{len(SPECS)} jobs")
    print(f"chaos_soak: {label}: accepted {len(accepted)} jobs")
    return [(doc["id"], spec) for doc, spec in zip(accepted, SPECS)]


def corrupt_cache_entries(cache_dir, digests, count):
    """Inject disk faults: truncate one entry, garbage the others.

    Only entries from ``digests`` (specs whose memo-holding shard is
    about to be killed or hung) are touched: their next execution is
    guaranteed to land on a shard that must read the corrupted file
    from disk — the quarantine path, not a warm in-process memo.
    """
    victims = [
        digest for digest in digests
        if os.path.exists(os.path.join(cache_dir, f"{digest}.json"))
    ][:count]
    if not victims:
        fail("no on-disk cache entries eligible for corruption")
    for i, digest in enumerate(victims):
        path = os.path.join(cache_dir, f"{digest}.json")
        if i % 2 == 0:
            # A torn write: the file ends mid-document.
            with open(path, "r+") as fh:
                fh.truncate(max(1, os.path.getsize(path) // 2))
        else:
            with open(path, "w") as fh:
                fh.write('{"digest": "not-the-right-digest"}')
        # Pin the mtime into the future so LRU eviction (oldest-first)
        # cannot collect the corpse before a shard has had to read it —
        # the fault must be *observed*, not tidied away.
        future = time.time() + 3600
        os.utime(path, (future, future))
        print(f"chaos_soak: disk fault injected into {digest[:12]}…json")
    return len(victims)


def settle(client, deadline=SETTLE_TIMEOUT):
    """Wait until every shard reports up again; returns final metrics."""
    end = time.monotonic() + deadline
    doc = None
    while time.monotonic() < end:
        doc = client.metrics()
        states = [shard["state"] for shard in doc["shards"]]
        if all(state == "up" for state in states):
            return doc
        time.sleep(0.5)
    fail(f"fleet did not heal within {deadline}s: "
         f"{[s['state'] for s in (doc or {}).get('shards', [])]}")


def scrape_prometheus(host, port, out_path):
    import http.client

    conn = http.client.HTTPConnection(host, port, timeout=30)
    try:
        conn.request("GET", "/metrics?format=prometheus")
        response = conn.getresponse()
        body = response.read().decode()
    finally:
        conn.close()
    if response.status != 200:
        fail(f"prometheus scrape returned {response.status}")
    try:
        families = parse_prometheus_text(body)
    except ValueError as exc:
        fail(f"prometheus exposition does not parse: {exc}")
    with open(out_path, "w") as fh:
        fh.write(body)
    print(f"chaos_soak: prometheus scrape OK ({len(families)} families)")


def main():
    if os.path.isdir(ART_DIR):
        shutil.rmtree(ART_DIR)
    os.makedirs(ART_DIR, exist_ok=True)
    expected, entry_size = compute_expected()
    # Budget ~60% of the full working set: evictions must fire, but a
    # useful fraction of entries stays resident.
    budget = max(4096, int(entry_size * len(SPECS) * 0.6))
    print(f"chaos_soak: cache entry ~{entry_size}B, budget {budget}B")

    fleet_dir = os.path.join(ART_DIR, "fleet")
    cache_dir = os.path.join(fleet_dir, "cache")
    oplog_path = os.path.join(ART_DIR, "fleet.oplog.jsonl")
    from repro.obs import OpLogger

    kills = 0
    hangs = 0
    disk_faults = 0
    all_accepted = []

    fleet = FleetThread(
        shards=SHARDS,
        fleet_dir=fleet_dir,
        cache_dir=cache_dir,
        cache_budget_bytes=budget,
        batch_window=0.02,
        health_interval=0.1,
        heartbeat_timeout=0.5,
        heartbeat_deadline=1.5,
        restart_backoff_base=0.2,
        oplog=OpLogger(path=oplog_path, component="fleet"),
    )
    fleet.start()
    prober = AvailabilityProber(fleet.base_url)
    prober.start()
    try:
        client = ServeClient(fleet.base_url, timeout=30.0,
                             connect_retries=5)
        supervisor = fleet.supervisor

        # Wave 1: populate the cache and the journals under no faults.
        all_accepted += submit_wave(client, "wave 1 (clean)")
        client.wait([job_id for job_id, _ in all_accepted],
                    timeout=WAIT_TIMEOUT)

        # Wave 2: resubmit everything, then SIGKILL a shard mid-flight;
        # its in-flight jobs must replay from the journal and fail over.
        wave2 = submit_wave(client, "wave 2 (SIGKILL mid-flight)")
        all_accepted += wave2
        victim = supervisor.shards[0]
        os.kill(victim.pid, signal.SIGKILL)
        kills += 1
        print(f"chaos_soak: SIGKILL shard 0 (pid {victim.pid})")
        client.wait([job_id for job_id, _ in wave2], timeout=WAIT_TIMEOUT)
        settle(client)

        # Disk faults: corrupt on-disk entries for specs owned by
        # shards 1 and 2 — the shards wave 3 hangs/kills.  With their
        # memo holders gone, the resubmitted specs are forced through
        # the shared cache's disk path, where the corruption must be
        # quarantined (never served, never a crash).
        doomed_digests = [
            JobSpec.from_dict(spec).to_sweep_job().digest()
            for spec in SPECS
            if supervisor.ring.assign(
                JobSpec.from_dict(spec).spec_key()
            ) in (1, 2)
        ]
        disk_faults += corrupt_cache_entries(
            cache_dir, doomed_digests, DISK_FAULTS_PLANNED
        )

        # Wave 3: two concurrent failure domains — SIGKILL shard 2
        # outright and hang shard 1 (SIGSTOP: the process owns its
        # socket but never answers, so only the heartbeat deadline can
        # unmask it) — then push the whole workload through again.
        victim = supervisor.shards[2]
        os.kill(victim.pid, signal.SIGKILL)
        kills += 1
        print(f"chaos_soak: SIGKILL shard 2 (pid {victim.pid})")
        hung = supervisor.shards[1]
        os.kill(hung.pid, signal.SIGSTOP)
        hangs += 1
        print(f"chaos_soak: SIGSTOP shard 1 (pid {hung.pid})")
        time.sleep(0.5)
        wave3 = submit_wave(client, "wave 3 (hung + killed shards)")
        all_accepted += wave3
        client.wait([job_id for job_id, _ in wave3], timeout=WAIT_TIMEOUT)

        final = settle(client)
        prober.stop()

        # Durability + correctness over every accepted job.
        lost = 0
        failed = 0
        mismatched = 0
        for job_id, spec in all_accepted:
            record = client.job(job_id)
            if record["status"] == "failed":
                failed += 1
                print(f"chaos_soak: job {job_id} FAILED: "
                      f"{record['error']}", file=sys.stderr)
            elif record["status"] != "done":
                lost += 1
                print(f"chaos_soak: job {job_id} LOST "
                      f"(status {record['status']})", file=sys.stderr)
            else:
                got = json.dumps(record["result"], sort_keys=True)
                if got != expected[json.dumps(spec, sort_keys=True)]:
                    mismatched += 1
                    print(f"chaos_soak: job {job_id} result diverges "
                          f"from direct runner", file=sys.stderr)

        fleet_doc = final["fleet"]
        cache_doc = fleet_doc["cache"]
        snapshot_path = os.path.join(ART_DIR, "fleet.metrics.json")
        with open(snapshot_path, "w") as fh:
            json.dump(final, fh, indent=2)
        scrape_prometheus(
            fleet.host, fleet.port,
            os.path.join(ART_DIR, "fleet.metrics.prom.txt"),
        )
    finally:
        prober.stop()
        fleet.stop()

    errors = validate_file(oplog_path)
    if errors:
        fail(f"fleet oplog failed schema validation: {errors[:3]}")

    over_budget = max(0, cache_doc.get("size_bytes", 0) - budget)
    metrics = {
        "accepted_jobs": len(all_accepted),
        "lost_jobs": lost,
        "failed_jobs": failed,
        "mismatched_results": mismatched,
        "shard_kills": kills,
        "hangs": hangs,
        "disk_faults": disk_faults,
        "shards_total": fleet_doc["shards_total"],
        "shards_up_final": fleet_doc["shards_up"],
        "restarts_total": fleet_doc["restarts_total"],
        "recoveries": fleet_doc["recoveries"],
        "recovery_seconds_max": fleet_doc["recovery_seconds_max"],
        "router_availability": prober.availability,
        "availability_samples": prober.samples,
        "failovers": fleet_doc["failovers"],
        "replayed_jobs": fleet_doc["replayed_jobs"],
        "journal_live_final": fleet_doc["journal_live"],
        "journal_torn_lines": fleet_doc["journal_torn_lines"],
        "cache_quarantined": cache_doc.get("quarantined", 0),
        "cache_evictions": cache_doc.get("evictions", 0),
        "cache_size_bytes": cache_doc.get("size_bytes", 0),
        "cache_budget_bytes": budget,
        "cache_over_budget_bytes": over_budget,
    }
    print("chaos_soak: " + json.dumps(metrics, indent=2, sort_keys=True))

    manifest = build_manifest(
        "chaos",
        f"{SHARDS} shards x {WAVES} waves x {len(SPECS)} jobs",
        metrics=metrics,
        artifact_paths=[snapshot_path, oplog_path],
        environment={"shards": SHARDS, "budget_bytes": budget},
    )
    write_manifest(manifest, os.path.join(ART_DIR, "chaos.manifest.json"))
    report = evaluate_spec(load_spec("chaos"), manifest)
    with open(os.path.join(ART_DIR, "chaos.verdict.json"), "w") as fh:
        json.dump(report.to_dict(), fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(report.render())
    sys.exit(report.exit_code)


if __name__ == "__main__":
    main()
