"""How much of the Equation-1 bound an adversarial workload exercises.

Constructs the Lemma-1 worst case (every co-runner stores the same line
just before the victim's request) and reports measured-vs-bound per
configuration.  This quantifies the pessimism of the analysis: the
bound must never be exceeded, and the adversarial chain should exercise
a substantial fraction of it for the last core in the handover order.
"""

from repro.params import MSI_THETA
from repro.experiments import format_table
from repro.experiments.tightness import measure_tightness

from conftest import emit, run_once

CONFIGS = [
    [100, 100, 100, 100],
    [300, 20, 20, 20],
    [500, MSI_THETA, 250, MSI_THETA],
    [MSI_THETA] * 4,
]


def test_bound_tightness(benchmark):
    def run():
        rows = []
        for thetas in CONFIGS:
            results = [measure_tightness(thetas, t) for t in range(len(thetas))]
            worst = max(results, key=lambda r: r.tightness)
            rows.append(
                [str(thetas), f"c{worst.target_core}", worst.measured,
                 worst.bound, f"{worst.tightness:.2f}"]
            )
        return rows

    rows = run_once(benchmark, run)
    emit(
        "bound_tightness",
        format_table(
            ["Θ", "worst target", "measured WCL", "Eq.1 bound", "tightness"],
            rows,
            title="Adversarial bound-tightness (Lemma-1 scenario)",
        ),
    )
    for row in rows:
        tightness = float(row[4])
        assert tightness <= 1.0         # the bound is never violated
        assert tightness > 0.5          # and it is not wildly pessimistic
