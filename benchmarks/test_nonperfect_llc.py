"""Footnote 1: the non-perfect LLC + fixed-latency DRAM configuration.

The paper states the non-perfect-LLC experiment "shows same
observations" as the perfect-LLC results and omits it.  We run it: the
WCML ordering (CoHoRT tightest, PENDULUM loosest) and the performance
ordering must survive a small LLC with DRAM refills and inclusion
back-invalidations.
"""

from dataclasses import replace

from repro.params import CacheGeometry, cohort_config
from repro.experiments import (
    FIG5_CONFIGS,
    format_table,
    run_wcml_experiment,
)
from repro.sim.system import run_simulation
from repro.workloads import splash_traces

from conftest import BENCH_GA, BENCH_SCALE, emit, run_once


def test_nonperfect_llc_same_observations(benchmark):
    def run():
        return run_wcml_experiment(
            "lu", FIG5_CONFIGS["all_cr"], scale=BENCH_SCALE, seed=0,
            ga_config=BENCH_GA, perfect_llc=False,
        )

    exp = run_once(benchmark, run)
    emit("nonperfect_llc", exp.to_table())

    # Same observations as the perfect-LLC panels: bound ordering holds.
    assert exp.bound_ratio("PCC", "CoHoRT") > 1.0
    assert exp.bound_ratio("PENDULUM", "CoHoRT") > \
        exp.bound_ratio("PCC", "CoHoRT")


def test_nonperfect_llc_exercises_dram_path(benchmark):
    """With a tiny LLC the DRAM / back-invalidation machinery engages."""
    traces = splash_traces("barnes", 4, scale=BENCH_SCALE, seed=0)
    tiny = CacheGeometry(size_bytes=128 * 64, line_bytes=64, ways=4)

    def run():
        cfg = replace(
            cohort_config([100, 50, 50, 50]),
            perfect_llc=False,
            llc=tiny,
            dram_latency=100,
        )
        return run_simulation(cfg, traces)

    stats = run_once(benchmark, run)
    emit(
        "nonperfect_llc_dram",
        format_table(
            ["metric", "value"],
            [
                ["DRAM fetches", stats.dram_fetches],
                ["back-invalidations", stats.back_invalidations],
                ["execution time", stats.execution_time],
            ],
            title="tiny-LLC stress (barnes)",
        ),
    )
    assert stats.dram_fetches > 0
