"""Figure 7: mode-switch adaptation as c0's requirement tightens.

Paper shape: at stage 1 the mode-1 system is schedulable; the ~1.5x
requirement cut at stage 2 and the further ~1.8x cut at stage 3 make
the static system unschedulable, while the adaptive system escalates
through the modes (degrading lower-criticality cores to MSI without
suspending them) and stays schedulable throughout.
"""

from repro.experiments import run_mode_switch_experiment

from conftest import BENCH_GA, BENCH_SCALE, emit, run_once


def test_fig7_mode_switch_adaptation(benchmark):
    exp = run_once(
        benchmark,
        lambda: run_mode_switch_experiment(
            benchmark="fft",
            criticalities=(4, 3, 2, 1),
            scale=BENCH_SCALE,
            seed=0,
            ga_config=BENCH_GA,
            run_measured=True,
        ),
    )
    text = str(exp.mode_table) + "\n\n" + exp.to_table()
    if exp.measured_c0_adaptive is not None:
        text += (
            f"\n\nmeasured c0 total memory latency: "
            f"adaptive={exp.measured_c0_adaptive:,} "
            f"static mode-1={exp.measured_c0_static:,}"
        )
    emit("fig7", text)

    s1, s2, s3 = exp.stages
    # Stage 1: schedulable as configured.
    assert s1.ok_without and s1.ok_with and s1.mode_with == 1
    # Stages 2 and 3: unschedulable without switching...
    assert not s2.ok_without and not s3.ok_without
    # ...but the adaptive system escalates and stays schedulable.
    assert s2.ok_with and s3.ok_with
    assert 1 < s2.mode_with <= s3.mode_with
    assert s3.degraded  # lower-criticality cores degraded, not suspended
    # Escalation tightens c0's bound below the tightened requirement.
    assert s3.bound_with <= s3.requirement_c0
