"""CI throughput gate: no silent slowdowns, no silent timing changes.

Re-runs the two reference systems of ``BENCH_throughput.json`` (the
checked-in artifact produced by ``benchmarks/test_sim_throughput.py``)
and fails when

* the simulated cycle counts differ from the artifact at all — that is
  a protocol-timing change, which must come with a deliberate artifact
  (and ``tests/data/cycle_reference_ocean4.json``) update; or
* accesses/second fall below ``1 - TOLERANCE`` (default 20%) of the
  artifact's recorded rate — a real performance regression.

Usage::

    PYTHONPATH=src python benchmarks/check_throughput_gate.py
    PYTHONPATH=src python benchmarks/check_throughput_gate.py --tolerance 0.5

Exit status 0 on pass, 1 on any gate failure.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.params import cohort_config, msi_fcfs_config
from repro.sim.system import run_simulation
from repro.workloads import splash_traces

ARTIFACT = Path(__file__).parent / "out" / "BENCH_throughput.json"

SYSTEMS = {
    "cohort": lambda: cohort_config([60] * 4),
    "msi_fcfs": lambda: msi_fcfs_config(4),
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.2,
        help="allowed fractional accesses/s regression (default 0.2 = 20%%)",
    )
    parser.add_argument(
        "--artifact", type=Path, default=ARTIFACT, help="reference JSON"
    )
    args = parser.parse_args(argv)

    reference = json.loads(args.artifact.read_text())
    traces = splash_traces("ocean", 4, scale=4.0, seed=0)
    total = sum(len(t) for t in traces)
    if total != reference["total_accesses"]:
        print(
            f"FAIL workload drifted: {total} accesses generated, "
            f"artifact recorded {reference['total_accesses']}"
        )
        return 1

    failures = []
    for key, make_config in SYSTEMS.items():
        ref = reference["systems"][key]
        started = time.perf_counter()
        stats = run_simulation(make_config(), traces)
        wall = time.perf_counter() - started
        rate = total / wall
        floor = (1.0 - args.tolerance) * ref["accesses_per_second"]
        cycles_ok = stats.final_cycle == ref["cycles"]
        rate_ok = rate >= floor
        verdict = "ok" if cycles_ok and rate_ok else "FAIL"
        print(
            f"{verdict} {key}: {stats.final_cycle} cycles "
            f"(artifact {ref['cycles']}), {rate:,.0f} accesses/s "
            f"(floor {floor:,.0f} = {1 - args.tolerance:.0%} of artifact)"
        )
        if not cycles_ok:
            failures.append(
                f"{key}: cycle count changed {ref['cycles']} -> "
                f"{stats.final_cycle}; timing changes need a deliberate "
                f"artifact update"
            )
        if not rate_ok:
            failures.append(
                f"{key}: throughput {rate:,.0f}/s below floor {floor:,.0f}/s"
            )

    for failure in failures:
        print(f"FAIL {failure}")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
