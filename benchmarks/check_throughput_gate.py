"""CI throughput gate: no silent slowdowns, no silent timing changes.

Re-runs the two reference systems of ``BENCH_throughput.json`` (the
checked-in artifact produced by ``benchmarks/test_sim_throughput.py``),
distils both the artifact and the fresh measurements into
:class:`repro.qa.RunManifest` documents, and evaluates the shipped
``throughput`` gate spec (``repro/qa/specs/throughput.json``) over the
(baseline, candidate) pair.  The spec asks, question by question:

* do the simulated cycle counts match the artifact exactly (timing
  changes must come with a deliberate artifact and
  ``tests/data/cycle_reference_ocean4.json`` update)?
* are accesses/second within ``1 - tolerance`` (default 20%) of the
  artifact's recorded rates?
* does attaching the full ``repro.obs`` telemetry stack leave the cycle
  count untouched and cost at most ``telemetry_tolerance`` of the
  telemetry-off throughput measured in the same run?
* does the lock-step 64-config batch keep its cycle identity, clear the
  ``min_speedup`` floor, and stay within the regression band of the
  artifact's batch rate?

Usage::

    PYTHONPATH=src python benchmarks/check_throughput_gate.py
    PYTHONPATH=src python benchmarks/check_throughput_gate.py --tolerance 0.5
    PYTHONPATH=src python benchmarks/check_throughput_gate.py \
        --measure-only --manifests-out bench_manifests/

With ``--manifests-out DIR`` the baseline and candidate manifests are
written to ``DIR/baseline.manifest.json`` / ``DIR/candidate.manifest.json``
so CI can re-gate them (or archive them) with ``cohort gate run``;
``--measure-only`` skips the in-process verdict so the decision is made
exclusively by that separate ``cohort gate`` invocation.

Exit status 0 on pass, 1 on any gate failure.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import statistics
import sys
import time
from pathlib import Path

from repro.obs import Telemetry
from repro.params import cohort_config, msi_fcfs_config
from repro.qa import build_manifest, evaluate_spec, load_spec, write_manifest
from repro.sim.system import System, run_simulation
from repro.workloads import splash_traces

sys.path.insert(0, str(Path(__file__).parent))
from bench_workloads import measure_lockstep  # noqa: E402

ARTIFACT = Path(__file__).parent / "out" / "BENCH_throughput.json"

#: Interleaved measurement rounds for the telemetry-overhead gate.
TELEMETRY_ROUNDS = 5

SYSTEMS = {
    "cohort": lambda: cohort_config([60] * 4),
    "msi_fcfs": lambda: msi_fcfs_config(4),
}


def _cycles_digest(final_cycles) -> str:
    """Content digest of a lock-step per-config cycle-count list."""
    return hashlib.sha256(
        json.dumps(list(final_cycles)).encode()
    ).hexdigest()


def baseline_manifest(reference: dict, artifact_path: Path):
    """Distil the checked-in benchmark artifact into a run manifest."""
    metrics = {"total_accesses": reference["total_accesses"]}
    for key in SYSTEMS:
        ref = reference["systems"][key]
        metrics[f"{key}_cycles"] = ref["cycles"]
        metrics[f"{key}_accesses_per_second"] = ref["accesses_per_second"]
    telemetry = reference.get("telemetry")
    if telemetry is not None:
        metrics["telemetry_cycles"] = telemetry["cycles"]
    lockstep = reference.get("lockstep")
    if lockstep is not None:
        metrics["lockstep_cycles_digest"] = _cycles_digest(
            lockstep["final_cycles"]
        )
        metrics["lockstep_speedup"] = lockstep["speedup"]
        metrics["lockstep_accesses_per_second"] = \
            lockstep["batch"]["accesses_per_second"]
        metrics["lockstep_configs"] = lockstep["configs"]
    return build_manifest(
        "bench_throughput", f"artifact {reference['workload']}",
        metrics=metrics,
        artifact_paths=[str(artifact_path)],
        environment={"source": "BENCH_throughput.json"},
    )


def measure_candidate(traces, total: int):
    """Re-measure everything the artifact records; returns a manifest."""
    metrics = {"total_accesses": total}

    for key, make_config in SYSTEMS.items():
        started = time.perf_counter()
        stats = run_simulation(make_config(), traces)
        wall = time.perf_counter() - started
        rate = total / wall
        metrics[f"{key}_cycles"] = stats.final_cycle
        metrics[f"{key}_accesses_per_second"] = rate
        print(
            f"measured {key}: {stats.final_cycle} cycles, "
            f"{rate:,.0f} accesses/s"
        )

    # Telemetry overhead: the same cohort run with the full repro.obs
    # stack attached, compared against a telemetry-off run measured in
    # the same invocation.  Interleaved median-of-N rounds on CPU time:
    # shared CI runners drift in speed over seconds, so sequential
    # single-shot wall-clock comparisons are noisier than the few-%
    # real overhead being gated — a min-of-few run can even measure
    # *negative* overhead.  A negative median is clamped to 0
    # (telemetry cannot speed the engine up).
    off_cpu, on_cpu = [], []
    for _ in range(TELEMETRY_ROUNDS):
        started = time.process_time()
        run_simulation(SYSTEMS["cohort"](), traces)
        off_cpu.append(time.process_time() - started)
        system = System(SYSTEMS["cohort"](), traces)
        Telemetry.attach(system, sample_every=500)
        started = time.process_time()
        stats = system.run()
        on_cpu.append(time.process_time() - started)
    off_med = statistics.median(off_cpu)
    on_med = statistics.median(on_cpu)
    overhead = max(0.0, on_med / off_med - 1.0)
    metrics["telemetry_cycles"] = stats.final_cycle
    metrics["telemetry_on_rate"] = total / on_med
    metrics["telemetry_off_rate"] = total / off_med
    metrics["telemetry_overhead"] = overhead
    print(
        f"measured cohort+telemetry: {stats.final_cycle} cycles, "
        f"{total / on_med:,.0f} accesses/s cpu ({overhead:+.1%} vs "
        f"telemetry-off over median-of-{TELEMETRY_ROUNDS})"
    )

    # Lock-step batch: the pinned 64-config θ-sweep, same measurement
    # discipline (interleaved median-of-N rounds on CPU time — a single
    # sequential-then-batch pair swings the speedup by 20%+ on shared
    # runners).  Identity with the sequential runs is asserted inside
    # measure_lockstep; identity with the artifact is the gate's job.
    ls = measure_lockstep()
    metrics["lockstep_cycles_digest"] = _cycles_digest(ls["final_cycles"])
    metrics["lockstep_speedup"] = ls["speedup"]
    metrics["lockstep_accesses_per_second"] = \
        ls["batch"]["accesses_per_second"]
    metrics["lockstep_configs"] = ls["configs"]
    print(
        f"measured lockstep: {ls['configs']} configs, "
        f"{ls['speedup']:.2f}x over sequential (median-of-{ls['rounds']} "
        f"cpu), {ls['batch']['accesses_per_second']:,.0f} accesses/s swept"
    )

    return build_manifest(
        "bench_throughput", "candidate ocean x4",
        config=SYSTEMS["cohort"](), traces=traces,
        metrics=metrics, seed=0,
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.2,
        help="allowed fractional accesses/s regression (default 0.2 = 20%%)",
    )
    parser.add_argument(
        "--telemetry-tolerance",
        type=float,
        default=0.2,
        help="allowed fractional slowdown from attaching repro.obs "
        "telemetry (default 0.2 = 20%%)",
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=5.0,
        help="required lock-step batch speedup over sequential fast-path "
        "runs on the 64-config benchmark (default 5.0)",
    )
    parser.add_argument(
        "--artifact", type=Path, default=ARTIFACT, help="reference JSON"
    )
    parser.add_argument(
        "--manifests-out", type=Path, metavar="DIR",
        help="write baseline.manifest.json and candidate.manifest.json "
        "to DIR (gate them with `cohort gate run --spec throughput`)",
    )
    parser.add_argument(
        "--report-out", type=Path, metavar="FILE",
        help="write the gate verdict report JSON to FILE",
    )
    parser.add_argument(
        "--measure-only", action="store_true",
        help="measure and write manifests but skip the in-process "
        "verdict (requires --manifests-out); the decision is then made "
        "by a separate `cohort gate run`",
    )
    args = parser.parse_args(argv)
    if args.measure_only and not args.manifests_out:
        parser.error("--measure-only requires --manifests-out")

    reference = json.loads(args.artifact.read_text())
    baseline = baseline_manifest(reference, args.artifact)
    traces = splash_traces("ocean", 4, scale=4.0, seed=0)
    total = sum(len(t) for t in traces)
    candidate = measure_candidate(traces, total)

    if args.manifests_out:
        args.manifests_out.mkdir(parents=True, exist_ok=True)
        write_manifest(
            baseline, str(args.manifests_out / "baseline.manifest.json")
        )
        write_manifest(
            candidate, str(args.manifests_out / "candidate.manifest.json")
        )
        print(f"manifests written to {args.manifests_out}/")
    if args.measure_only:
        return 0

    report = evaluate_spec(
        load_spec("throughput"), candidate, baseline,
        params={
            "tolerance": args.tolerance,
            "telemetry_tolerance": args.telemetry_tolerance,
            "min_speedup": args.min_speedup,
        },
    )
    print()
    print(report.render())
    if args.report_out:
        with open(args.report_out, "w") as fh:
            json.dump(report.to_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"verdict report written to {args.report_out}")
    return report.exit_code


if __name__ == "__main__":
    sys.exit(main())
