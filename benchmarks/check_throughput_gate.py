"""CI throughput gate: no silent slowdowns, no silent timing changes.

Re-runs the two reference systems of ``BENCH_throughput.json`` (the
checked-in artifact produced by ``benchmarks/test_sim_throughput.py``)
and fails when

* the simulated cycle counts differ from the artifact at all — that is
  a protocol-timing change, which must come with a deliberate artifact
  (and ``tests/data/cycle_reference_ocean4.json``) update; or
* accesses/second fall below ``1 - TOLERANCE`` (default 20%) of the
  artifact's recorded rate — a real performance regression; or
* attaching the full ``repro.obs`` telemetry stack (spans, histograms,
  samplers) changes the simulated cycle count at all, or costs more
  than ``--telemetry-tolerance`` (default 20%) of the telemetry-off
  throughput measured in the same gate run — telemetry must stay an
  opt-in observer, not a tax on the engine; or
* the lock-step 64-config batch benchmark loses its cycle identity
  with the artifact, drops below ``--min-speedup`` (default 5x) over
  the 64 sequential fast-path runs, or regresses more than
  ``--tolerance`` against the artifact's recorded batch throughput.

Usage::

    PYTHONPATH=src python benchmarks/check_throughput_gate.py
    PYTHONPATH=src python benchmarks/check_throughput_gate.py --tolerance 0.5

Exit status 0 on pass, 1 on any gate failure.
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import time
from pathlib import Path

from repro.obs import Telemetry
from repro.params import cohort_config, msi_fcfs_config
from repro.sim.system import System, run_simulation
from repro.workloads import splash_traces

sys.path.insert(0, str(Path(__file__).parent))
from bench_workloads import measure_lockstep  # noqa: E402

ARTIFACT = Path(__file__).parent / "out" / "BENCH_throughput.json"

#: Interleaved measurement rounds for the telemetry-overhead gate.
TELEMETRY_ROUNDS = 5

SYSTEMS = {
    "cohort": lambda: cohort_config([60] * 4),
    "msi_fcfs": lambda: msi_fcfs_config(4),
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.2,
        help="allowed fractional accesses/s regression (default 0.2 = 20%%)",
    )
    parser.add_argument(
        "--telemetry-tolerance",
        type=float,
        default=0.2,
        help="allowed fractional slowdown from attaching repro.obs "
        "telemetry (default 0.2 = 20%%)",
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=5.0,
        help="required lock-step batch speedup over sequential fast-path "
        "runs on the 64-config benchmark (default 5.0)",
    )
    parser.add_argument(
        "--artifact", type=Path, default=ARTIFACT, help="reference JSON"
    )
    args = parser.parse_args(argv)

    reference = json.loads(args.artifact.read_text())
    traces = splash_traces("ocean", 4, scale=4.0, seed=0)
    total = sum(len(t) for t in traces)
    if total != reference["total_accesses"]:
        print(
            f"FAIL workload drifted: {total} accesses generated, "
            f"artifact recorded {reference['total_accesses']}"
        )
        return 1

    failures = []
    for key, make_config in SYSTEMS.items():
        ref = reference["systems"][key]
        started = time.perf_counter()
        stats = run_simulation(make_config(), traces)
        wall = time.perf_counter() - started
        rate = total / wall
        floor = (1.0 - args.tolerance) * ref["accesses_per_second"]
        cycles_ok = stats.final_cycle == ref["cycles"]
        rate_ok = rate >= floor
        verdict = "ok" if cycles_ok and rate_ok else "FAIL"
        print(
            f"{verdict} {key}: {stats.final_cycle} cycles "
            f"(artifact {ref['cycles']}), {rate:,.0f} accesses/s "
            f"(floor {floor:,.0f} = {1 - args.tolerance:.0%} of artifact)"
        )
        if not cycles_ok:
            failures.append(
                f"{key}: cycle count changed {ref['cycles']} -> "
                f"{stats.final_cycle}; timing changes need a deliberate "
                f"artifact update"
            )
        if not rate_ok:
            failures.append(
                f"{key}: throughput {rate:,.0f}/s below floor {floor:,.0f}/s"
            )

    # Telemetry gate: same cohort run with the full repro.obs stack
    # attached, compared against a telemetry-off run measured in the
    # same gate invocation.  Interleaved median-of-N rounds on CPU
    # time: shared CI runners drift in speed over seconds, so
    # sequential single-shot wall-clock comparisons are noisier than
    # the few-% real overhead being gated — a min-of-few run can even
    # measure *negative* overhead.  A negative median is clamped to 0
    # (telemetry cannot speed the engine up) and flagged as noise.
    off_cpu, on_cpu = [], []
    for _ in range(TELEMETRY_ROUNDS):
        started = time.process_time()
        run_simulation(SYSTEMS["cohort"](), traces)
        off_cpu.append(time.process_time() - started)
        system = System(SYSTEMS["cohort"](), traces)
        Telemetry.attach(system, sample_every=500)
        started = time.process_time()
        stats = system.run()
        on_cpu.append(time.process_time() - started)
    off_med = statistics.median(off_cpu)
    on_med = statistics.median(on_cpu)
    rate = total / on_med
    floor = (1.0 - args.telemetry_tolerance) * (total / off_med)
    ref_cycles = reference["systems"]["cohort"]["cycles"]
    cycles_ok = stats.final_cycle == ref_cycles
    rate_ok = rate >= floor
    verdict = "ok" if cycles_ok and rate_ok else "FAIL"
    raw_overhead = on_med / off_med - 1.0
    overhead = max(0.0, raw_overhead)
    noise = " [negative median clamped to 0 — measurement noise]" \
        if raw_overhead < 0 else ""
    print(
        f"{verdict} cohort+telemetry: {stats.final_cycle} cycles "
        f"(artifact {ref_cycles}), {rate:,.0f} accesses/s cpu "
        f"({overhead:+.1%} vs telemetry-off over median-of-"
        f"{TELEMETRY_ROUNDS}, floor {floor:,.0f} = "
        f"{1 - args.telemetry_tolerance:.0%}){noise}"
    )
    if not cycles_ok:
        failures.append(
            f"cohort+telemetry: cycle count changed {ref_cycles} -> "
            f"{stats.final_cycle}; telemetry must be cycle-neutral"
        )
    if not rate_ok:
        failures.append(
            f"cohort+telemetry: throughput {rate:,.0f}/s below floor "
            f"{floor:,.0f}/s ({overhead:+.1%} telemetry overhead)"
        )

    # Lock-step gate: re-run the pinned 64-config θ-sweep batch and
    # hold it to (a) exact cycle identity with the artifact (identity
    # with the sequential runs is asserted inside measure_lockstep),
    # (b) the --min-speedup floor over the same 64 runs done
    # sequentially on the fast path, and (c) at most --tolerance
    # throughput regression against the artifact's recorded batch rate.
    # Same measurement discipline as the telemetry gate: interleaved
    # median-of-N rounds on CPU time, because a single
    # sequential-then-batch pair swings the speedup by 20%+ on shared
    # runners.
    ls_ref = reference.get("lockstep")
    if ls_ref is None:
        failures.append(
            "artifact has no 'lockstep' section; regenerate "
            "BENCH_throughput.json"
        )
    else:
        ls = measure_lockstep()
        cycles_ok = ls["final_cycles"] == ls_ref["final_cycles"]
        speedup = ls["speedup"]
        speedup_ok = speedup >= args.min_speedup
        rate = ls["batch"]["accesses_per_second"]
        floor = (1.0 - args.tolerance) * ls_ref["batch"]["accesses_per_second"]
        rate_ok = rate >= floor
        verdict = "ok" if cycles_ok and speedup_ok and rate_ok else "FAIL"
        print(
            f"{verdict} lockstep: {ls['configs']} configs, {speedup:.2f}x "
            f"over sequential (median-of-{ls['rounds']} cpu, floor "
            f"{args.min_speedup:.1f}x), {rate:,.0f} accesses/s cpu swept "
            f"(floor {floor:,.0f} = {1 - args.tolerance:.0%} of artifact)"
        )
        if not cycles_ok:
            failures.append(
                "lockstep: per-config cycle counts diverged from the "
                "artifact/sequential runs; the lock-step engine must stay "
                "bit-identical"
            )
        if not speedup_ok:
            failures.append(
                f"lockstep: batch speedup {speedup:.2f}x below the "
                f"{args.min_speedup:.1f}x floor"
            )
        if not rate_ok:
            failures.append(
                f"lockstep: batch throughput {rate:,.0f}/s below floor "
                f"{floor:,.0f}/s"
            )

    for failure in failures:
        print(f"FAIL {failure}")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
