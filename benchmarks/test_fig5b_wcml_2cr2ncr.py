"""Figure 5b: total WCML with 2 critical + 2 non-critical cores.

Paper shape: a Cr core now suffers interference from only one other Cr
core, so CoHoRT's bounds tighten vs the all-Cr panel; PENDULUM is ~6x
worse than CoHoRT; PENDULUM's nCr cores have no bound at all.
"""

import math

from repro.experiments import FIG5_CONFIGS, run_wcml_experiment

from conftest import BENCH_GA, BENCH_SCALE, BENCH_SUITE, emit, run_once


def test_fig5b_wcml_2cr_2ncr(benchmark):
    critical = FIG5_CONFIGS["2cr_2ncr"]

    def run():
        return [
            run_wcml_experiment(
                name, critical, scale=BENCH_SCALE, seed=0, ga_config=BENCH_GA
            )
            for name in BENCH_SUITE
        ]

    experiments = run_once(benchmark, run)
    blocks = []
    for exp in experiments:
        blocks.append(exp.to_table())
        blocks.append(
            f"bound ratio PENDULUM/CoHoRT (Cr cores): "
            f"{exp.bound_ratio('PENDULUM', 'CoHoRT'):.2f}x"
        )
    emit("fig5b", "\n\n".join(blocks))

    for exp in experiments:
        for system in exp.systems:
            assert system.within_bounds(), f"{exp.benchmark}/{system.name}"
        pend = exp.system("PENDULUM")
        # nCr cores are unbounded under PENDULUM (Section VII critique)...
        assert math.isinf(pend.analytical[2])
        assert math.isinf(pend.analytical[3])
        # ...while CoHoRT keeps an Equation-3 bound even for nCr cores.
        cohort = exp.system("CoHoRT")
        assert all(math.isfinite(a) for a in cohort.analytical)
        assert exp.bound_ratio("PENDULUM", "CoHoRT") > 2.0


def test_fig5b_tighter_than_all_cr(benchmark):
    """Fewer Cr co-runners → tighter Cr bounds than the all-Cr panel."""

    def run():
        all_cr = run_wcml_experiment(
            "fft", FIG5_CONFIGS["all_cr"], scale=BENCH_SCALE, seed=0,
            ga_config=BENCH_GA,
        )
        mixed = run_wcml_experiment(
            "fft", FIG5_CONFIGS["2cr_2ncr"], scale=BENCH_SCALE, seed=0,
            ga_config=BENCH_GA,
        )
        return all_cr, mixed

    all_cr, mixed = run_once(benchmark, run)
    assert (
        mixed.system("CoHoRT").analytical[0]
        < all_cr.system("CoHoRT").analytical[0]
    )
