"""The complete benchmark suite (all ten workloads) in one sweep.

The per-figure benches use a four-workload subset to keep iteration
fast; this file runs the headline Figure-5a and Figure-6 comparisons
over the *entire* registered suite, as the paper does with SPLASH-2.
"""

from repro.experiments import (
    FIG5_CONFIGS,
    format_table,
    geomean,
    run_performance_benchmark,
    run_wcml_experiment,
)
from repro.workloads import benchmark_names

from conftest import BENCH_GA, BENCH_SCALE, emit, run_once


def test_full_suite_wcml(benchmark):
    def run():
        return [
            run_wcml_experiment(
                name, FIG5_CONFIGS["all_cr"], scale=BENCH_SCALE, seed=0,
                ga_config=BENCH_GA,
            )
            for name in benchmark_names()
        ]

    experiments = run_once(benchmark, run)
    rows = []
    for exp in experiments:
        rows.append(
            [
                exp.benchmark,
                f"{exp.bound_ratio('PCC', 'CoHoRT'):.2f}",
                f"{exp.bound_ratio('PENDULUM', 'CoHoRT'):.2f}",
                all(s.within_bounds() for s in exp.systems),
            ]
        )
    pcc_geo = geomean([float(r[1]) for r in rows])
    pend_geo = geomean([float(r[2]) for r in rows])
    rows.append(["geomean", f"{pcc_geo:.2f}", f"{pend_geo:.2f}", "-"])
    emit(
        "full_suite_wcml",
        format_table(
            ["benchmark", "PCC/CoHoRT bound", "PEND/CoHoRT bound",
             "predictable"],
            rows,
            title="Figure 5a over the full suite (all cores critical)",
        ),
    )
    for exp in experiments:
        for system in exp.systems:
            assert system.within_bounds(), f"{exp.benchmark}/{system.name}"
        # CoHoRT at least matches PCC on every workload (it strictly wins
        # wherever any hits are guaranteeable) and the suite-wide margins
        # match the paper's story.
        assert exp.bound_ratio("PCC", "CoHoRT") >= 0.99, exp.benchmark
        assert exp.bound_ratio("PENDULUM", "CoHoRT") > 2.0, exp.benchmark
    assert pcc_geo > 1.5
    assert pend_geo > 6.0


def test_full_suite_performance(benchmark):
    def run():
        return [
            run_performance_benchmark(
                name, [True] * 4, scale=BENCH_SCALE, seed=0,
                ga_config=BENCH_GA,
            )
            for name in benchmark_names()
        ]

    results = run_once(benchmark, run)
    rows = []
    for r in results:
        norm = r.normalised()
        rows.append(
            [r.benchmark, f"{norm['CoHoRT']:.2f}", f"{norm['PCC']:.2f}",
             f"{norm['PENDULUM']:.2f}"]
        )
    cohort_geo = geomean([float(r[1]) for r in rows])
    pend_geo = geomean([float(r[3]) for r in rows])
    rows.append(["geomean", f"{cohort_geo:.2f}", "-", f"{pend_geo:.2f}"])
    emit(
        "full_suite_performance",
        format_table(
            ["benchmark", "CoHoRT", "PCC", "PENDULUM"],
            rows,
            title="Figure 6 over the full suite (normalised to MSI-FCFS)",
        ),
    )
    assert cohort_geo < 1.25
    assert pend_geo > cohort_geo
