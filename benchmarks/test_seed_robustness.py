"""Seed robustness: the paper's shapes are not one-lucky-seed artefacts.

Re-runs the core Figure-5/6 comparison across several workload seeds and
asserts the orderings hold for every one of them.
"""

from repro.experiments import (
    FIG5_CONFIGS,
    format_table,
    run_performance_benchmark,
    run_wcml_experiment,
)

from conftest import BENCH_GA, emit, run_once

SEEDS = (0, 1, 2)


def test_shapes_hold_across_seeds(benchmark):
    def run():
        rows = []
        for seed in SEEDS:
            wcml = run_wcml_experiment(
                "lu", FIG5_CONFIGS["all_cr"], scale=0.8, seed=seed,
                ga_config=BENCH_GA,
            )
            perf = run_performance_benchmark(
                "lu", [True] * 4, scale=0.8, seed=seed, ga_config=BENCH_GA
            )
            norm = perf.normalised()
            rows.append(
                [
                    seed,
                    f"{wcml.bound_ratio('PCC', 'CoHoRT'):.2f}",
                    f"{wcml.bound_ratio('PENDULUM', 'CoHoRT'):.2f}",
                    f"{norm['CoHoRT']:.2f}",
                    f"{norm['PENDULUM']:.2f}",
                    all(s.within_bounds() for s in wcml.systems),
                ]
            )
        return rows

    rows = run_once(benchmark, run)
    emit(
        "seed_robustness",
        format_table(
            [
                "seed",
                "PCC/CoHoRT bound",
                "PEND/CoHoRT bound",
                "CoHoRT slowdown",
                "PENDULUM slowdown",
                "predictable",
            ],
            rows,
            title="Shape robustness across workload seeds (lu)",
        ),
    )
    for row in rows:
        assert float(row[1]) > 1.0       # CoHoRT tighter than PCC
        assert float(row[2]) > float(row[1])  # PENDULUM loosest
        assert float(row[3]) < float(row[4])  # CoHoRT faster than PENDULUM
        assert row[5] is True            # measured under bounds
