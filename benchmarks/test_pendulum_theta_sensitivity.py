"""PENDULUM's global-timer dilemma: no single θ serves everyone.

PENDULUM exposes *one* timer value for the whole platform.  This bench
sweeps it and shows the dilemma that motivates CoHoRT's per-core,
requirement-optimized timers: small θ forfeits the hit protection that
makes time-based coherence attractive, large θ blows up every critical
core's bound — and the average case suffers from TDM regardless.
"""

from repro.params import pendulum_config
from repro.analysis import build_profiles, pendulum_bounds, wcl_miss_pendulum
from repro.params import LatencyParams
from repro.experiments import format_table
from repro.sim.system import run_simulation
from repro.workloads import splash_traces

from conftest import BENCH_SCALE, emit, run_once

THETA_SWEEP = (20, 100, 300, 1000)


def test_pendulum_global_theta_sensitivity(benchmark):
    critical = [True, True, False, False]
    traces = splash_traces("lu", 4, scale=BENCH_SCALE, seed=0)
    latencies = LatencyParams()
    profiles = build_profiles(traces, pendulum_config(critical).l1)

    def run():
        rows = []
        for theta in THETA_SWEEP:
            stats = run_simulation(
                pendulum_config(critical, theta=theta), traces
            )
            bounds = pendulum_bounds(critical, theta, profiles, latencies)
            rows.append(
                [
                    theta,
                    bounds[0].wcml,
                    stats.core(0).hits,
                    stats.execution_time,
                ]
            )
        return rows

    rows = run_once(benchmark, run)
    emit(
        "pendulum_theta_sensitivity",
        format_table(
            ["global θ", "Cr WCML bound", "Cr measured hits",
             "execution time"],
            rows,
            title="PENDULUM global-timer sweep (lu, 2Cr+2nCr)",
        ),
    )
    sw = latencies.slot_width
    # The bound grows linearly in θ — per Cr core, every co-runner's
    # (identical) timer is charged.
    assert rows[-1][1] > rows[0][1] * 3
    small, large = rows[0], rows[-1]
    bound_small = wcl_miss_pendulum(4, 2, THETA_SWEEP[0], sw)
    bound_large = wcl_miss_pendulum(4, 2, THETA_SWEEP[-1], sw)
    assert bound_large / bound_small > 4  # grows ~linearly in θ
    # Larger θ does buy measured hits (the protection is real)...
    assert large[2] >= small[2]
    # ...which is exactly the dilemma: hits and bounds pull θ in opposite
    # directions, and a single global value cannot satisfy per-task
    # requirements — CoHoRT's optimization engine exists to resolve this.