"""Simulator throughput: simulated cycles per wall-clock second.

Documents the performance claim in docs/simulator.md and guards against
order-of-magnitude regressions in the event engine: the kernel skips
idle cycles, so timer waits are free and contended workloads dominate.
"""

import statistics
import time

from repro.params import cohort_config, msi_fcfs_config
from repro.experiments import format_table
from repro.obs import Telemetry
from repro.sim.system import System, run_simulation
from repro.workloads import splash_traces

from bench_workloads import measure_lockstep
from conftest import emit, run_once

#: Interleaved measurement rounds for the telemetry-overhead number.
TELEMETRY_ROUNDS = 5


def test_simulator_throughput(benchmark):
    traces = splash_traces("ocean", 4, scale=4.0, seed=0)
    total_accesses = sum(len(t) for t in traces)

    def run():
        rows = []
        payload = {
            "workload": "ocean x4",
            "total_accesses": total_accesses,
            "systems": {},
        }
        for name, key, cfg in (
            ("CoHoRT θ=60", "cohort", cohort_config([60] * 4)),
            ("MSI-FCFS", "msi_fcfs", msi_fcfs_config(4)),
        ):
            started = time.perf_counter()
            stats = run_simulation(cfg, traces)
            wall = time.perf_counter() - started
            rows.append(
                [
                    name,
                    stats.final_cycle,
                    f"{wall:.2f}",
                    f"{stats.final_cycle / wall:,.0f}",
                    f"{total_accesses / wall:,.0f}",
                ]
            )
            payload["systems"][key] = {
                "cycles": stats.final_cycle,
                "wall_seconds": wall,
                "cycles_per_second": stats.final_cycle / wall,
                "accesses_per_second": total_accesses / wall,
            }

        # Telemetry overhead: the same CoHoRT run with the full repro.obs
        # stack attached (spans + histograms + samplers).  Cycle counts
        # must not move; wall-clock overhead is gated by
        # check_throughput_gate.py at 20%.  Interleaved median-of-N on
        # CPU time: shared runners drift in speed over seconds, so a
        # single sequential wall-clock pair is noisier than the few-%
        # real overhead — and can even come out *negative*.
        off_cpu, on_cpu = [], []
        for _ in range(TELEMETRY_ROUNDS):
            started = time.process_time()
            run_simulation(cohort_config([60] * 4), traces)
            off_cpu.append(time.process_time() - started)
            system = System(cohort_config([60] * 4), traces)
            Telemetry.attach(system, sample_every=500)
            started = time.process_time()
            stats = system.run()
            on_cpu.append(time.process_time() - started)
        assert stats.final_cycle == payload["systems"]["cohort"]["cycles"]
        off_med = statistics.median(off_cpu)
        on_med = statistics.median(on_cpu)
        raw_overhead = on_med / off_med - 1.0
        rows.append(
            [
                "CoHoRT θ=60 + telemetry",
                stats.final_cycle,
                f"{on_med:.2f}",
                f"{stats.final_cycle / on_med:,.0f}",
                f"{total_accesses / on_med:,.0f}",
            ]
        )
        payload["telemetry"] = {
            "system": "cohort",
            "sample_every": 500,
            "cycles": stats.final_cycle,
            "rounds": TELEMETRY_ROUNDS,
            "wall_seconds": on_med,
            "accesses_per_second": total_accesses / on_med,
            # A negative median means measurement noise still exceeded
            # the true overhead; clamp to 0 (telemetry cannot speed the
            # engine up) and keep the raw value for diagnosis.
            "overhead_fraction": max(0.0, raw_overhead),
            "raw_overhead_fraction": raw_overhead,
        }

        # Lock-step engine: one pinned 64-config θ-sweep population over
        # one shared timer_sweep trace set, batch vs the same 64 runs
        # done sequentially on the fast path (interleaved median-of-N on
        # CPU time, cycle identity asserted every round).  The speedup
        # here is the headline claim of docs/performance.md and is
        # gated in CI.
        ls = measure_lockstep()
        rows.append(
            [
                f"lock-step batch ({ls['configs']} configs)",
                "-",
                f"{ls['batch']['cpu_seconds']:.2f}",
                "-",
                f"{ls['batch']['accesses_per_second']:,.0f}",
            ]
        )
        payload["lockstep"] = ls
        assert ls["speedup"] >= 5.0, (
            f"lock-step batch speedup {ls['speedup']:.2f}x below the 5x "
            f"floor (rounds: {ls['speedups']})"
        )
        return rows, payload

    rows, payload = run_once(benchmark, run)
    emit(
        "sim_throughput",
        format_table(
            ["system", "cycles", "wall s", "cycles/s", "accesses/s"],
            rows,
            title=f"Simulator throughput (ocean x4, {total_accesses:,} accesses)",
        ),
    )
    emit(
        "BENCH_throughput",
        "machine-readable copy of sim_throughput.txt in BENCH_throughput.json",
        payload=payload,
    )
    for row in rows:
        # Guard: at least 10^4 simulated cycles per second.  (The
        # lock-step batch row reports no single cycle count.)
        if row[3] != "-":
            assert float(row[3].replace(",", "")) > 10_000, row
