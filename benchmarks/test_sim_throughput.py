"""Simulator throughput: simulated cycles per wall-clock second.

Documents the performance claim in docs/simulator.md and guards against
order-of-magnitude regressions in the event engine: the kernel skips
idle cycles, so timer waits are free and contended workloads dominate.
"""

import time

from repro.params import cohort_config, msi_fcfs_config
from repro.experiments import format_table
from repro.obs import Telemetry
from repro.sim.system import System, run_simulation
from repro.workloads import splash_traces

from conftest import emit, run_once


def test_simulator_throughput(benchmark):
    traces = splash_traces("ocean", 4, scale=4.0, seed=0)
    total_accesses = sum(len(t) for t in traces)

    def run():
        rows = []
        payload = {
            "workload": "ocean x4",
            "total_accesses": total_accesses,
            "systems": {},
        }
        for name, key, cfg in (
            ("CoHoRT θ=60", "cohort", cohort_config([60] * 4)),
            ("MSI-FCFS", "msi_fcfs", msi_fcfs_config(4)),
        ):
            started = time.perf_counter()
            stats = run_simulation(cfg, traces)
            wall = time.perf_counter() - started
            rows.append(
                [
                    name,
                    stats.final_cycle,
                    f"{wall:.2f}",
                    f"{stats.final_cycle / wall:,.0f}",
                    f"{total_accesses / wall:,.0f}",
                ]
            )
            payload["systems"][key] = {
                "cycles": stats.final_cycle,
                "wall_seconds": wall,
                "cycles_per_second": stats.final_cycle / wall,
                "accesses_per_second": total_accesses / wall,
            }

        # Telemetry overhead: the same CoHoRT run with the full repro.obs
        # stack attached (spans + histograms + samplers).  Cycle counts
        # must not move; wall-clock overhead is gated by
        # check_throughput_gate.py at 20%.
        system = System(cohort_config([60] * 4), traces)
        Telemetry.attach(system, sample_every=500)
        started = time.perf_counter()
        stats = system.run()
        wall = time.perf_counter() - started
        assert stats.final_cycle == payload["systems"]["cohort"]["cycles"]
        rows.append(
            [
                "CoHoRT θ=60 + telemetry",
                stats.final_cycle,
                f"{wall:.2f}",
                f"{stats.final_cycle / wall:,.0f}",
                f"{total_accesses / wall:,.0f}",
            ]
        )
        payload["telemetry"] = {
            "system": "cohort",
            "sample_every": 500,
            "cycles": stats.final_cycle,
            "wall_seconds": wall,
            "accesses_per_second": total_accesses / wall,
            "overhead_fraction": (
                wall / payload["systems"]["cohort"]["wall_seconds"] - 1.0
            ),
        }
        return rows, payload

    rows, payload = run_once(benchmark, run)
    emit(
        "sim_throughput",
        format_table(
            ["system", "cycles", "wall s", "cycles/s", "accesses/s"],
            rows,
            title=f"Simulator throughput (ocean x4, {total_accesses:,} accesses)",
        ),
    )
    emit(
        "BENCH_throughput",
        "machine-readable copy of sim_throughput.txt in BENCH_throughput.json",
        payload=payload,
    )
    for row in rows:
        # Guard: at least 10^4 simulated cycles per second.
        assert float(row[3].replace(",", "")) > 10_000, row
