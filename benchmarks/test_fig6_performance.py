"""Figure 6: overall execution time normalised to COTS MSI + FCFS.

Paper shape (all-Cr panel): average slowdowns of ~1.03x (CoHoRT),
~1.13x (PCC) and ~1.50x (PENDULUM, whose TDM arbiter wastes idle
slots).  The ordering CoHoRT < PCC/PENDULUM must hold in every panel.
"""

import pytest

from repro.experiments import FIG5_CONFIGS, run_performance_experiment

from conftest import BENCH_GA, BENCH_SCALE, BENCH_SUITE, emit, run_once


@pytest.mark.parametrize("config_name", ["all_cr", "2cr_2ncr", "1cr_3ncr"])
def test_fig6_normalised_execution_time(benchmark, config_name):
    critical = FIG5_CONFIGS[config_name]

    exp = run_once(
        benchmark,
        lambda: run_performance_experiment(
            BENCH_SUITE, critical, scale=BENCH_SCALE, seed=0,
            ga_config=BENCH_GA,
        ),
    )
    emit(
        f"fig6_{config_name}",
        exp.to_table() + "\n\n" + exp.utilization_table(),
        payload=exp.to_dict(),
    )

    cohort = exp.average_slowdown("CoHoRT")
    pcc = exp.average_slowdown("PCC")
    pend = exp.average_slowdown("PENDULUM")
    # The paper's ordering: CoHoRT closest to COTS, PENDULUM worst.
    assert cohort < pend
    assert pcc < pend
    # CoHoRT's average slowdown stays small (paper: 1.03x).
    assert cohort < 1.30
    # PENDULUM pays a visible TDM penalty (paper: 1.50x).
    assert pend > 1.10
