"""Shared configuration for the benchmark harness.

Every file in this directory regenerates one table or figure of the
paper (see DESIGN.md's experiment index).  Each benchmark prints the
regenerated rows/series (run ``pytest benchmarks/ --benchmark-only -s``
to see them live) and also appends them to ``benchmarks/out/``.
"""

from __future__ import annotations

import os
from typing import Callable

import pytest

from repro.opt import GAConfig

#: GA settings used across benchmarks: small but representative.
BENCH_GA = GAConfig(population_size=20, generations=15, seed=1)

#: Workload scale used across benchmarks (keeps a full run to minutes).
BENCH_SCALE = 1.0

#: The benchmark subset used for the multi-benchmark figures.
BENCH_SUITE = ["fft", "lu", "radix", "barnes", "ocean", "water"]

OUT_DIR = os.path.join(os.path.dirname(__file__), "out")


def emit(name: str, text: str, payload=None) -> None:
    """Print a regenerated artefact and persist it under benchmarks/out/.

    ``payload`` (a JSON-serialisable dict) is additionally written as
    ``<name>.json`` for machine consumption.
    """
    print()
    print(text)
    os.makedirs(OUT_DIR, exist_ok=True)
    with open(os.path.join(OUT_DIR, f"{name}.txt"), "w") as fh:
        fh.write(text + "\n")
    if payload is not None:
        from repro.experiments import dump_json

        dump_json(os.path.join(OUT_DIR, f"{name}.json"), payload)


def run_once(benchmark, fn: Callable):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)


@pytest.fixture
def ga_config():
    return BENCH_GA
