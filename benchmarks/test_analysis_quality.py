"""Quality of the static guaranteed-hit analysis across the suite.

The guaranteed-hit analysis (Section V's "black box") must be *sound* —
never promise more hits than a contended execution delivers — but it is
only useful if it is not hopelessly conservative.  This bench measures,
per benchmark, the guaranteed hits against the hits actually observed
under full contention with optimized timers.
"""

from repro.params import LatencyParams, cohort_config
from repro.analysis import build_profiles, cohort_bounds
from repro.experiments import format_table
from repro.opt import OptimizationEngine
from repro.sim.system import run_simulation
from repro.workloads import benchmark_names, splash_traces

from conftest import BENCH_GA, BENCH_SCALE, emit, run_once


def test_guaranteed_hits_quality(benchmark):
    def run():
        rows = []
        for name in benchmark_names():
            traces = splash_traces(name, 4, scale=BENCH_SCALE, seed=0)
            config = cohort_config([1] * 4)
            profiles = build_profiles(traces, config.l1)
            engine = OptimizationEngine(profiles, LatencyParams(), BENCH_GA)
            thetas = engine.optimize(timed=[True] * 4).thetas
            stats = run_simulation(cohort_config(thetas), traces)
            bounds = cohort_bounds(thetas, profiles, config.latencies)
            guaranteed = sum(b.m_hit for b in bounds)
            measured = sum(c.hits for c in stats.cores)
            total = sum(c.accesses for c in stats.cores)
            rows.append(
                [
                    name,
                    str(thetas),
                    guaranteed,
                    measured,
                    f"{guaranteed / total:.0%}",
                    f"{measured / total:.0%}",
                    f"{guaranteed / measured:.2f}" if measured else "-",
                ]
            )
        return rows

    rows = run_once(benchmark, run)
    emit(
        "analysis_quality",
        format_table(
            [
                "benchmark",
                "optimized Θ",
                "guaranteed hits",
                "measured hits",
                "guaranteed rate",
                "measured rate",
                "coverage",
            ],
            rows,
            title="Static guaranteed-hit analysis vs contended measurement",
        ),
    )
    nonzero = 0
    for row in rows:
        guaranteed, measured = row[2], row[3]
        # Soundness: the analysis never over-promises.
        assert guaranteed <= measured, row[0]
        if guaranteed > 0:
            nonzero += 1
    # Usefulness: the analysis captures real hit shares on almost every
    # workload (volrend's upgrade-heavy patterns legitimately guarantee
    # none — every reuse is a load-then-store upgrade).
    assert nonzero >= len(rows) - 1
