"""Table II: per-mode optimized timer configurations (fft, crit 4/3/2/1).

The paper's Table II lists the θ vector the offline engine programs
into the Mode-Switch LUTs for each of the four operating modes.  We
regenerate the equivalent table with our GA: the *values* differ (our
traces are synthetic) but the *structure* must match — at mode m every
core with criticality < m is at -1 (MSI), and the most-critical core's
timer grows as co-runners degrade.
"""

from repro.params import MSI_THETA
from repro.experiments import run_mode_switch_experiment

from conftest import BENCH_GA, BENCH_SCALE, emit, run_once


def test_table2_mode_timer_configurations(benchmark):
    exp = run_once(
        benchmark,
        lambda: run_mode_switch_experiment(
            benchmark="fft",
            criticalities=(4, 3, 2, 1),
            scale=BENCH_SCALE,
            seed=0,
            ga_config=BENCH_GA,
            run_measured=False,
        ),
    )
    table = exp.mode_table
    emit("table2", "Table II equivalent (fft):\n" + str(table))

    assert table.modes == [1, 2, 3, 4]
    # Structure of the paper's Table II: degraded cores at -1 per mode.
    assert all(th != MSI_THETA for th in table.thetas[1])
    assert table.thetas[2][3] == MSI_THETA
    assert table.thetas[3][2] == table.thetas[3][3] == MSI_THETA
    assert table.thetas[4][1] == table.thetas[4][2] == table.thetas[4][3] == MSI_THETA
    assert table.thetas[4][0] != MSI_THETA
