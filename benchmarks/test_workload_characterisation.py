"""Workload characterisation table (supports the DESIGN.md substitution).

Not a paper artefact per se, but the evidence behind the SPLASH-2
substitution: every synthetic benchmark must exhibit true sharing, and
the write-shared lines — the coherence-traffic drivers the timers
arbitrate over — must be present wherever the real benchmark has them.
"""

from repro.workloads import characterize_suite, suite_table

from conftest import BENCH_SCALE, emit, run_once


def test_workload_characterisation(benchmark):
    profiles = run_once(
        benchmark, lambda: characterize_suite(scale=BENCH_SCALE, seed=0)
    )
    emit("workload_characterisation", suite_table(profiles))
    read_only_shared = {"raytrace", "cholesky"}
    for p in profiles:
        assert p.shared_lines > 0, p.name
        if p.name not in read_only_shared:
            assert p.write_shared_lines > 0, p.name
