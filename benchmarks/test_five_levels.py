"""Generality: five criticality levels (DO-178C style) on six cores.

The paper stresses that CoHoRT supports *any* number of criticality
levels — unlike PENDULUM/CARP's effective two — citing DO-178C's five
assurance levels.  This benchmark configures a six-core system with
levels 5..1, fills a five-mode Mode-Switch LUT, and checks the
escalation ladder degrades exactly one criticality band per mode while
every mode keeps the higher-criticality cores schedulable.
"""

from repro.params import MSI_THETA, LatencyParams, cohort_config
from repro.analysis import build_profiles
from repro.mcs import ModeSwitchController, Task, TaskSet
from repro.opt import GAConfig, OptimizationEngine
from repro.workloads import splash_traces

from conftest import emit, run_once

CRITICALITIES = [5, 4, 3, 2, 1, 1]


def test_five_criticality_levels(benchmark):
    def run():
        traces = splash_traces("lu", len(CRITICALITIES), scale=0.7, seed=0)
        profiles = build_profiles(traces, cohort_config([1] * 6).l1)
        engine = OptimizationEngine(
            profiles, LatencyParams(),
            GAConfig(population_size=14, generations=10, seed=2),
        )
        table = engine.optimize_modes(
            CRITICALITIES, {m: [None] * 6 for m in range(1, 6)}
        )
        tasks = TaskSet(
            tuple(
                Task(f"tau_{i}", l, traces[i])
                for i, l in enumerate(CRITICALITIES)
            )
        )
        controller = ModeSwitchController(
            tasks, table, profiles, LatencyParams()
        )
        return table, controller

    table, controller = run_once(benchmark, run)
    emit("five_levels", "Five-level Mode-Switch LUTs (lu, 6 cores):\n"
         + str(table))

    assert table.modes == [1, 2, 3, 4, 5]
    for mode in table.modes:
        thetas = table.thetas[mode]
        for core, level in enumerate(CRITICALITIES):
            if level >= mode:
                assert thetas[core] != MSI_THETA, (mode, core)
            else:
                assert thetas[core] == MSI_THETA, (mode, core)
    # Escalation monotonically tightens the top core's bound.
    bounds = [controller.bounds_at(m)[0].wcml for m in table.modes]
    assert bounds[-1] < bounds[0]
