"""Ablation: GA vs random search vs hill climbing (DESIGN.md call-out).

The paper chooses a GA for the timer optimization problem; this bench
quantifies that choice against the search baselines under an equal
evaluation budget on the same fitness landscape.
"""

from repro.params import LatencyParams, cohort_config
from repro.analysis import build_profiles
from repro.experiments import format_table
from repro.opt import (
    GAConfig,
    GeneticAlgorithm,
    TimerProblem,
    hill_climb,
    random_search,
)
from repro.workloads import splash_traces

from conftest import BENCH_SCALE, emit, run_once


def test_ablation_ga_vs_search_baselines(benchmark):
    traces = splash_traces("barnes", 4, scale=BENCH_SCALE, seed=0)
    profiles = build_profiles(traces, cohort_config([1] * 4).l1)
    problem = TimerProblem(profiles, LatencyParams(), timed=[True] * 4)
    bounds = problem.gene_bounds()

    ga_config = GAConfig(
        population_size=20, generations=14, seed=3, stall_generations=0
    )
    budget = ga_config.population_size * (ga_config.generations + 1)

    def run():
        ga = GeneticAlgorithm(bounds, problem.fitness, ga_config)
        ga_result = ga.run()
        rnd = random_search(bounds, problem.fitness, budget=budget, seed=3)
        hc = hill_climb(bounds, problem.fitness, budget=budget, seed=3)
        return ga_result, rnd, hc

    ga_result, rnd, hc = run_once(benchmark, run)
    rows = [
        ["GA (paper's choice)", ga_result.evaluations, ga_result.best_fitness,
         str(problem.expand(ga_result.best_genes))],
        ["random search", rnd.evaluations, rnd.best_fitness,
         str(problem.expand(rnd.best_genes))],
        ["hill climbing", hc.evaluations, hc.best_fitness,
         str(problem.expand(hc.best_genes))],
    ]
    emit(
        "ablation_optimizer",
        format_table(
            ["optimizer", "evaluations", "objective (avg WCML/access)", "Θ"],
            rows,
            title="Optimizer ablation, equal evaluation budget (barnes)",
        ),
    )
    # The GA must not lose to pure random sampling.
    assert ga_result.best_fitness <= rnd.best_fitness * 1.02
