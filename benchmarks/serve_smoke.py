"""CI smoke test for ``cohort serve``: the real process, the real signal.

Starts ``python -m repro.cli serve`` as a subprocess, has two concurrent
clients submit the same batch (round 1), repeats the batch (round 2,
which must be >= 90% cache hits), saves a ``/metrics`` snapshot, then
sends SIGTERM and requires a clean graceful drain (exit code 0, final
metrics snapshot written).

Exit code is the assertion — non-zero on any failure.

    PYTHONPATH=src python benchmarks/serve_smoke.py [artifact_dir]
"""

import json
import os
import signal
import subprocess
import sys
import threading
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.serve import ServeClient  # noqa: E402

PORT = int(os.environ.get("SERVE_SMOKE_PORT", "8791"))
ART_DIR = sys.argv[1] if len(sys.argv) > 1 else "serve-artifacts"

SPECS = [
    {"benchmark": "fft", "thetas": thetas, "scale": 0.1, "seed": 0}
    for thetas in (
        [60, 20, 20, 20],
        [120, 60, 20, 20],
        [300, 60, 60, 60],
    )
]


def fail(message):
    print(f"serve_smoke: FAIL — {message}", file=sys.stderr)
    sys.exit(1)


def wait_healthy(client, deadline=30.0):
    end = time.monotonic() + deadline
    while time.monotonic() < end:
        try:
            doc = client.healthz()
            if doc["status"] == "ok":
                return
        except Exception:
            pass
        time.sleep(0.2)
    fail("server never became healthy")


def submit_round(client, label):
    """Two concurrent clients submit the same batch; every job must land."""
    outcomes = [None, None]

    def one_client(slot):
        local = ServeClient(f"http://127.0.0.1:{PORT}", timeout=60.0)
        outcomes[slot] = local.submit_and_wait(
            SPECS, max_retries=20, timeout=300
        )

    threads = [
        threading.Thread(target=one_client, args=(slot,)) for slot in (0, 1)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=300)
    for slot, records in enumerate(outcomes):
        if records is None:
            fail(f"{label}: client {slot} did not finish")
        for record in records:
            if record["status"] != "done":
                fail(f"{label}: job {record['id']} -> {record['status']} "
                     f"({record['error']})")
    payloads = [
        json.dumps([r["result"] for r in records], sort_keys=True)
        for records in outcomes
    ]
    if payloads[0] != payloads[1]:
        fail(f"{label}: the two clients disagree on results")
    print(f"serve_smoke: {label} ok "
          f"({2 * len(SPECS)} jobs across 2 clients)")


def main():
    os.makedirs(ART_DIR, exist_ok=True)
    final_metrics = os.path.join(ART_DIR, "final.metrics.json")
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (env.get("PYTHONPATH"), "src") if p
    )
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "serve",
            "--port", str(PORT), "--jobs", "2",
            "--max-batch", "8", "--batch-window", "0.05",
            "--queue-limit", "32",
            "--cache-dir", os.path.join(ART_DIR, "cache"),
            "--metrics-out", final_metrics,
        ],
        env=env,
    )
    try:
        client = ServeClient(f"http://127.0.0.1:{PORT}", timeout=30.0)
        wait_healthy(client)

        submit_round(client, "round 1")
        before = client.metrics()["runner"]
        submit_round(client, "round 2 (duplicate)")
        after = client.metrics()

        delta_hits = after["runner"]["cache_hits"] - before["cache_hits"]
        delta_misses = (
            after["runner"]["cache_misses"] - before["cache_misses"]
        )
        round2_jobs = 2 * len(SPECS)
        hit_rate = delta_hits / round2_jobs
        print(f"serve_smoke: round-2 cache hits {delta_hits}/{round2_jobs} "
              f"(misses {delta_misses})")
        if hit_rate < 0.9:
            fail(f"round-2 cache hit rate {hit_rate:.2f} < 0.90")

        with open(os.path.join(ART_DIR, "metrics.json"), "w") as fh:
            json.dump(after, fh, indent=2)

        proc.send_signal(signal.SIGTERM)
        code = proc.wait(timeout=60)
        if code != 0:
            fail(f"server exited {code} after SIGTERM")
        if not os.path.exists(final_metrics):
            fail("no final metrics snapshot written on drain")
        print("serve_smoke: clean SIGTERM drain, exit 0")
        print("serve_smoke: PASS")
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=10)


if __name__ == "__main__":
    main()
