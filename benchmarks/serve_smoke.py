"""CI smoke test for ``cohort serve``: the real process, the real signal.

Starts ``python -m repro.cli serve`` as a subprocess (with the
operational log and service-trace export enabled), has two concurrent
clients submit the same batch (round 1), repeats the batch (round 2,
which must be >= 90% cache hits), sends one probe request with an
explicit ``X-Trace-Id`` and follows that id end to end (response
header, result envelope, oplog, exported Perfetto trace), saves a
``/metrics`` snapshot plus its Prometheus exposition, then sends
SIGTERM and requires a clean graceful drain (exit code 0, final
metrics snapshot written).

The assertions live in the shipped gate specs
(``repro/qa/specs/serve.json`` and ``repro/qa/specs/slo.json``): this
script only *measures* — request failures, cross-client mismatches,
the warm-round hit rate, the drain exit code, trace propagation — and
computes the SLO inputs from the oplog.  Manifests
(``serve_smoke.manifest.json``, ``serve_smoke.slo.manifest.json``) and
verdict reports (``*.verdict.json``) land in the artifact directory for
CI to archive and re-gate with ``cohort gate run``.

Exit code is the worst gate verdict — non-zero on any failing question.

    PYTHONPATH=src python benchmarks/serve_smoke.py [artifact_dir]
"""

import json
import os
import signal
import subprocess
import sys
import threading
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.obs import compute_slo, parse_prometheus_text  # noqa: E402
from repro.obs import read_oplog  # noqa: E402
from repro.obs.ops import render_slo  # noqa: E402
from repro.obs.validate import validate_file  # noqa: E402
from repro.qa import build_manifest, evaluate_spec, load_spec  # noqa: E402
from repro.qa import write_manifest  # noqa: E402
from repro.serve import ServeClient  # noqa: E402

PROBE_TRACE_ID = "serve-smoke-probe-trace"

PORT = int(os.environ.get("SERVE_SMOKE_PORT", "8791"))
ART_DIR = sys.argv[1] if len(sys.argv) > 1 else "serve-artifacts"

SPECS = [
    {"benchmark": "fft", "thetas": thetas, "scale": 0.1, "seed": 0}
    for thetas in (
        [60, 20, 20, 20],
        [120, 60, 20, 20],
        [300, 60, 60, 60],
    )
]


def fail(message):
    """Harness machinery broke — not a gate verdict, just die."""
    print(f"serve_smoke: FAIL — {message}", file=sys.stderr)
    sys.exit(1)


def wait_healthy(client, deadline=30.0):
    end = time.monotonic() + deadline
    while time.monotonic() < end:
        try:
            doc = client.healthz()
            if doc["status"] == "ok":
                return
        except Exception:
            pass
        time.sleep(0.2)
    fail("server never became healthy")


def submit_round(client, label):
    """Two concurrent clients submit the same batch.

    Returns ``(failures, mismatches)`` — jobs that did not land, and
    whether the two clients disagreed on results — for the gate spec to
    judge; only harness breakage (a client thread never finishing)
    aborts directly.
    """
    outcomes = [None, None]

    def one_client(slot):
        local = ServeClient(f"http://127.0.0.1:{PORT}", timeout=60.0)
        outcomes[slot] = local.submit_and_wait(
            SPECS, max_retries=20, timeout=300
        )

    threads = [
        threading.Thread(target=one_client, args=(slot,)) for slot in (0, 1)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=300)
    failures = 0
    for slot, records in enumerate(outcomes):
        if records is None:
            fail(f"{label}: client {slot} did not finish")
        for record in records:
            if record["status"] != "done":
                print(
                    f"serve_smoke: {label}: job {record['id']} -> "
                    f"{record['status']} ({record['error']})",
                    file=sys.stderr,
                )
                failures += 1
    payloads = [
        json.dumps([r["result"] for r in records], sort_keys=True)
        for records in outcomes
    ]
    mismatches = 0 if payloads[0] == payloads[1] else 1
    if mismatches:
        print(f"serve_smoke: {label}: the two clients disagree on results",
              file=sys.stderr)
    print(f"serve_smoke: {label} measured "
          f"({2 * len(SPECS)} jobs across 2 clients, "
          f"{failures} failures, {mismatches} mismatches)")
    return failures, mismatches


def probe_trace(client):
    """Submit one job with an explicit trace id; measure propagation.

    Returns ``(header_ok, envelope_ok)`` — whether the 202 response
    echoed ``X-Trace-Id`` (header and body) and whether the final
    result envelope carried the same id.  The oplog/trace-file halves
    of the check run after drain, once those artefacts are flushed.
    """
    status, headers, doc = client._request(
        "POST", "/jobs", {"jobs": [SPECS[0]]},
        extra_headers={"X-Trace-Id": PROBE_TRACE_ID},
    )
    if status != 202 or not isinstance(doc, dict):
        fail(f"probe submission returned {status}")
    lower = {key.lower(): value for key, value in headers.items()}
    header_ok = (
        lower.get("x-trace-id") == PROBE_TRACE_ID
        and doc.get("trace_id") == PROBE_TRACE_ID
    )
    finished = client.wait([job["id"] for job in doc["jobs"]], timeout=120)
    envelope_ok = all(
        record["trace_id"] == PROBE_TRACE_ID
        for record in finished.values()
    )
    return header_ok, envelope_ok


def scrape_prometheus(client, out_path):
    """GET /metrics?format=prometheus, check it parses, archive it."""
    import http.client

    conn = http.client.HTTPConnection("127.0.0.1", PORT, timeout=30)
    try:
        conn.request("GET", "/metrics?format=prometheus")
        response = conn.getresponse()
        body = response.read().decode()
    finally:
        conn.close()
    if response.status != 200:
        fail(f"prometheus scrape returned {response.status}")
    try:
        families = parse_prometheus_text(body)
    except ValueError as exc:
        fail(f"prometheus exposition does not parse: {exc}")
    with open(out_path, "w") as fh:
        fh.write(body)
    print(f"serve_smoke: prometheus scrape OK ({len(families)} families)")


def main():
    os.makedirs(ART_DIR, exist_ok=True)
    final_metrics = os.path.join(ART_DIR, "final.metrics.json")
    oplog_path = os.path.join(ART_DIR, "serve.oplog.jsonl")
    trace_path = os.path.join(ART_DIR, "serve.trace.json")
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (env.get("PYTHONPATH"), "src") if p
    )
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "serve",
            "--port", str(PORT), "--jobs", "2",
            "--max-batch", "8", "--batch-window", "0.05",
            "--queue-limit", "32",
            "--cache-dir", os.path.join(ART_DIR, "cache"),
            "--metrics-out", final_metrics,
            "--oplog", oplog_path,
            "--trace-out", trace_path,
        ],
        env=env,
    )
    try:
        client = ServeClient(f"http://127.0.0.1:{PORT}", timeout=30.0)
        wait_healthy(client)

        round1_failures, round1_mismatches = submit_round(client, "round 1")
        before = client.metrics()["runner"]
        round2_failures, round2_mismatches = submit_round(
            client, "round 2 (duplicate)"
        )
        after = client.metrics()

        delta_hits = after["runner"]["cache_hits"] - before["cache_hits"]
        delta_misses = (
            after["runner"]["cache_misses"] - before["cache_misses"]
        )
        round2_jobs = 2 * len(SPECS)
        hit_rate = delta_hits / round2_jobs
        print(f"serve_smoke: round-2 cache hits {delta_hits}/{round2_jobs} "
              f"(misses {delta_misses})")

        header_ok, envelope_ok = probe_trace(client)
        after = client.metrics()

        metrics_snapshot = os.path.join(ART_DIR, "metrics.json")
        with open(metrics_snapshot, "w") as fh:
            json.dump(after, fh, indent=2)
        scrape_prometheus(
            client, os.path.join(ART_DIR, "metrics.prom.txt")
        )

        proc.send_signal(signal.SIGTERM)
        code = proc.wait(timeout=60)
        snapshot_written = os.path.exists(final_metrics)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=10)

    # The probe id must also survive into the flushed artefacts: the
    # oplog (admit → retire) and the exported Perfetto service trace.
    for artefact in (oplog_path, trace_path):
        errors = validate_file(artefact)
        if errors:
            fail(f"artefact failed schema validation: {errors[:3]}")
    oplog_events = read_oplog(oplog_path)
    probe_events = {
        event["event"] for event in oplog_events
        if event.get("trace_id") == PROBE_TRACE_ID
    }
    oplog_ok = {"admit", "retire"} <= probe_events
    with open(trace_path) as fh:
        trace_doc = json.load(fh)
    trace_ok = any(
        event.get("args", {}).get("trace_id") == PROBE_TRACE_ID
        for event in trace_doc.get("traceEvents", [])
    )
    trace_propagation_ok = (
        header_ok and envelope_ok and oplog_ok and trace_ok
    )
    print(
        "serve_smoke: trace propagation "
        f"header={header_ok} envelope={envelope_ok} "
        f"oplog={oplog_ok} trace={trace_ok}"
    )

    artifacts = [metrics_snapshot, oplog_path, trace_path]
    if snapshot_written:
        artifacts.append(final_metrics)
    manifest = build_manifest(
        "serve_smoke", f"2 clients x {len(SPECS)} jobs x 2 rounds",
        metrics={
            "round1_failures": round1_failures,
            "round2_failures": round2_failures,
            "client_mismatches": round1_mismatches + round2_mismatches,
            "round2_hit_rate": hit_rate,
            "round2_cache_misses": delta_misses,
            "drain_exit_code": code,
            "final_snapshot_written": snapshot_written,
            "trace_propagation_ok": trace_propagation_ok,
        },
        engine=after["runner"]["engine"],
        artifact_paths=artifacts,
        environment={"port": PORT, "jobs": 2},
    )
    write_manifest(
        manifest, os.path.join(ART_DIR, "serve_smoke.manifest.json")
    )
    report = evaluate_spec(load_spec("serve"), manifest)
    with open(os.path.join(ART_DIR, "serve_smoke.verdict.json"), "w") as fh:
        json.dump(report.to_dict(), fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(report.render())

    # Second verdict: the SLO gate over the whole run's oplog.
    slo_metrics = compute_slo(oplog_events)
    print(render_slo(slo_metrics))
    slo_manifest = build_manifest(
        "slo", "serve_smoke oplog",
        metrics=slo_metrics,
        artifact_paths=[oplog_path],
        environment={"port": PORT, "jobs": 2},
    )
    write_manifest(
        slo_manifest, os.path.join(ART_DIR, "serve_smoke.slo.manifest.json")
    )
    slo_report = evaluate_spec(load_spec("slo"), slo_manifest)
    slo_verdict = os.path.join(ART_DIR, "serve_smoke.slo.verdict.json")
    with open(slo_verdict, "w") as fh:
        json.dump(slo_report.to_dict(), fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(slo_report.render())
    sys.exit(max(report.exit_code, slo_report.exit_code))


if __name__ == "__main__":
    main()
