"""CI smoke test for ``cohort serve``: the real process, the real signal.

Starts ``python -m repro.cli serve`` as a subprocess, has two concurrent
clients submit the same batch (round 1), repeats the batch (round 2,
which must be >= 90% cache hits), saves a ``/metrics`` snapshot, then
sends SIGTERM and requires a clean graceful drain (exit code 0, final
metrics snapshot written).

The assertions live in the shipped ``serve`` gate spec
(``repro/qa/specs/serve.json``): this script only *measures* — request
failures, cross-client mismatches, the warm-round hit rate, the drain
exit code — stamps the counts into a :class:`repro.qa.RunManifest`, and
lets ``repro.qa.evaluate_spec`` decide.  The manifest
(``serve_smoke.manifest.json``) and verdict report
(``serve_smoke.verdict.json``) are written into the artifact directory
for CI to archive and re-gate with ``cohort gate run --spec serve``.

Exit code is the gate verdict — non-zero on any failing question.

    PYTHONPATH=src python benchmarks/serve_smoke.py [artifact_dir]
"""

import json
import os
import signal
import subprocess
import sys
import threading
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.qa import build_manifest, evaluate_spec, load_spec  # noqa: E402
from repro.qa import write_manifest  # noqa: E402
from repro.serve import ServeClient  # noqa: E402

PORT = int(os.environ.get("SERVE_SMOKE_PORT", "8791"))
ART_DIR = sys.argv[1] if len(sys.argv) > 1 else "serve-artifacts"

SPECS = [
    {"benchmark": "fft", "thetas": thetas, "scale": 0.1, "seed": 0}
    for thetas in (
        [60, 20, 20, 20],
        [120, 60, 20, 20],
        [300, 60, 60, 60],
    )
]


def fail(message):
    """Harness machinery broke — not a gate verdict, just die."""
    print(f"serve_smoke: FAIL — {message}", file=sys.stderr)
    sys.exit(1)


def wait_healthy(client, deadline=30.0):
    end = time.monotonic() + deadline
    while time.monotonic() < end:
        try:
            doc = client.healthz()
            if doc["status"] == "ok":
                return
        except Exception:
            pass
        time.sleep(0.2)
    fail("server never became healthy")


def submit_round(client, label):
    """Two concurrent clients submit the same batch.

    Returns ``(failures, mismatches)`` — jobs that did not land, and
    whether the two clients disagreed on results — for the gate spec to
    judge; only harness breakage (a client thread never finishing)
    aborts directly.
    """
    outcomes = [None, None]

    def one_client(slot):
        local = ServeClient(f"http://127.0.0.1:{PORT}", timeout=60.0)
        outcomes[slot] = local.submit_and_wait(
            SPECS, max_retries=20, timeout=300
        )

    threads = [
        threading.Thread(target=one_client, args=(slot,)) for slot in (0, 1)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=300)
    failures = 0
    for slot, records in enumerate(outcomes):
        if records is None:
            fail(f"{label}: client {slot} did not finish")
        for record in records:
            if record["status"] != "done":
                print(
                    f"serve_smoke: {label}: job {record['id']} -> "
                    f"{record['status']} ({record['error']})",
                    file=sys.stderr,
                )
                failures += 1
    payloads = [
        json.dumps([r["result"] for r in records], sort_keys=True)
        for records in outcomes
    ]
    mismatches = 0 if payloads[0] == payloads[1] else 1
    if mismatches:
        print(f"serve_smoke: {label}: the two clients disagree on results",
              file=sys.stderr)
    print(f"serve_smoke: {label} measured "
          f"({2 * len(SPECS)} jobs across 2 clients, "
          f"{failures} failures, {mismatches} mismatches)")
    return failures, mismatches


def main():
    os.makedirs(ART_DIR, exist_ok=True)
    final_metrics = os.path.join(ART_DIR, "final.metrics.json")
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (env.get("PYTHONPATH"), "src") if p
    )
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "serve",
            "--port", str(PORT), "--jobs", "2",
            "--max-batch", "8", "--batch-window", "0.05",
            "--queue-limit", "32",
            "--cache-dir", os.path.join(ART_DIR, "cache"),
            "--metrics-out", final_metrics,
        ],
        env=env,
    )
    try:
        client = ServeClient(f"http://127.0.0.1:{PORT}", timeout=30.0)
        wait_healthy(client)

        round1_failures, round1_mismatches = submit_round(client, "round 1")
        before = client.metrics()["runner"]
        round2_failures, round2_mismatches = submit_round(
            client, "round 2 (duplicate)"
        )
        after = client.metrics()

        delta_hits = after["runner"]["cache_hits"] - before["cache_hits"]
        delta_misses = (
            after["runner"]["cache_misses"] - before["cache_misses"]
        )
        round2_jobs = 2 * len(SPECS)
        hit_rate = delta_hits / round2_jobs
        print(f"serve_smoke: round-2 cache hits {delta_hits}/{round2_jobs} "
              f"(misses {delta_misses})")

        metrics_snapshot = os.path.join(ART_DIR, "metrics.json")
        with open(metrics_snapshot, "w") as fh:
            json.dump(after, fh, indent=2)

        proc.send_signal(signal.SIGTERM)
        code = proc.wait(timeout=60)
        snapshot_written = os.path.exists(final_metrics)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=10)

    artifacts = [metrics_snapshot]
    if snapshot_written:
        artifacts.append(final_metrics)
    manifest = build_manifest(
        "serve_smoke", f"2 clients x {len(SPECS)} jobs x 2 rounds",
        metrics={
            "round1_failures": round1_failures,
            "round2_failures": round2_failures,
            "client_mismatches": round1_mismatches + round2_mismatches,
            "round2_hit_rate": hit_rate,
            "round2_cache_misses": delta_misses,
            "drain_exit_code": code,
            "final_snapshot_written": snapshot_written,
        },
        engine=after["runner"]["engine"],
        artifact_paths=artifacts,
        environment={"port": PORT, "jobs": 2},
    )
    write_manifest(
        manifest, os.path.join(ART_DIR, "serve_smoke.manifest.json")
    )
    report = evaluate_spec(load_spec("serve"), manifest)
    with open(os.path.join(ART_DIR, "serve_smoke.verdict.json"), "w") as fh:
        json.dump(report.to_dict(), fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(report.render())
    sys.exit(report.exit_code)


if __name__ == "__main__":
    main()
