"""Optimization-engine runtime (Section VIII, experimental setup text).

The paper reports Matlab GA runtimes of 50 minutes (fft, ~47k requests)
to 20 hours (ocean, ~2.5M requests).  Our engine memoises the static
cache analysis per (θ, WCL-bucket), so a full optimization takes
seconds; this benchmark records the wall time per benchmark so the
speedup is documented (EXPERIMENTS.md).
"""

import pytest

from repro.params import LatencyParams, cohort_config
from repro.analysis import build_profiles
from repro.opt import OptimizationEngine
from repro.workloads import splash_traces

from conftest import BENCH_GA, BENCH_SCALE, emit, run_once


@pytest.mark.parametrize("name", ["fft", "ocean"])
def test_optimization_engine_runtime(benchmark, name):
    traces = splash_traces(name, 4, scale=BENCH_SCALE, seed=0)
    profiles = build_profiles(traces, cohort_config([1] * 4).l1)
    engine = OptimizationEngine(profiles, LatencyParams(), BENCH_GA)

    result = run_once(benchmark, lambda: engine.optimize(timed=[True] * 4))
    emit(
        f"opt_runtime_{name}",
        f"{name}: {sum(p.num_accesses for p in profiles)} requests, "
        f"optimized thetas {result.thetas} in {result.wall_seconds:.2f}s "
        f"({result.ga.evaluations} GA evaluations, "
        f"{result.ga.cache_hits} memoized)",
    )
    assert result.feasible
    # Paper: 50 min - 20 h in Matlab; the memoised engine is ~10^3 faster.
    assert result.wall_seconds < 120
