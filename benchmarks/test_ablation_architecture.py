"""Ablations of the architectural design choices DESIGN.md calls out.

* RROF vs plain RR vs FCFS arbitration under the same CoHoRT protocol —
  RROF is what makes the Equation-1 bound tight without hurting the
  average case.
* The hits-over-misses (run-ahead) window of the non-blocking private
  caches.
* Direct cache-to-cache transfers vs PCC-style via-LLC transfers.
"""

from dataclasses import replace

from repro.params import ArbiterKind, cohort_config
from repro.experiments import format_table
from repro.sim.system import run_simulation
from repro.workloads import splash_traces

from conftest import BENCH_SCALE, emit, run_once

THETAS = [120, 60, 60, 60]


def test_ablation_arbitration(benchmark):
    traces = splash_traces("lu", 4, scale=BENCH_SCALE, seed=0)

    def run():
        out = {}
        for kind in (ArbiterKind.RROF, ArbiterKind.ROUND_ROBIN,
                     ArbiterKind.FCFS):
            cfg = cohort_config(THETAS, arbiter=kind)
            stats = run_simulation(cfg, traces, record_latencies=True)
            out[kind.value] = stats
        return out

    results = run_once(benchmark, run)
    rows = [
        [
            name,
            stats.execution_time,
            max(c.max_request_latency for c in stats.cores),
        ]
        for name, stats in results.items()
    ]
    emit(
        "ablation_arbitration",
        format_table(
            ["arbiter", "execution time", "worst observed latency"],
            rows,
            title="Arbitration ablation under CoHoRT timers (lu)",
        ),
    )
    # RROF's average-case cost vs FCFS stays small.
    assert results["rrof"].execution_time <= results["fcfs"].execution_time * 1.25


def test_ablation_runahead_window(benchmark):
    traces = splash_traces("cholesky", 4, scale=BENCH_SCALE, seed=0)

    def run():
        out = {}
        for window in (0, 2, 8, 32):
            cfg = replace(cohort_config(THETAS), runahead_window=window)
            out[window] = run_simulation(cfg, traces)
        return out

    results = run_once(benchmark, run)
    rows = [
        [w, s.execution_time, sum(c.runahead_hits for c in s.cores)]
        for w, s in results.items()
    ]
    emit(
        "ablation_runahead",
        format_table(
            ["window", "execution time", "run-ahead hits"],
            rows,
            title="Hits-over-misses window ablation (cholesky)",
        ),
    )
    # Non-blocking caches help: window 8 beats fully blocking.
    assert results[8].execution_time <= results[0].execution_time
    # And the benefit is monotone-ish going from 0 to 8.
    assert results[2].execution_time <= results[0].execution_time


def test_ablation_transfer_path(benchmark):
    """Cache-to-cache vs via-LLC dirty handovers (CoHoRT vs PCC family)."""
    traces = splash_traces("radix", 4, scale=BENCH_SCALE, seed=0)

    def run():
        direct = run_simulation(cohort_config(THETAS), traces)
        via_llc = run_simulation(
            replace(cohort_config(THETAS), via_llc_transfers=True), traces
        )
        return direct, via_llc

    direct, via_llc = run_once(benchmark, run)
    emit(
        "ablation_transfer",
        format_table(
            ["transfer path", "execution time", "write-backs"],
            [
                ["direct cache-to-cache (CoHoRT)", direct.execution_time,
                 direct.writebacks],
                ["via LLC (PCC family)", via_llc.execution_time,
                 via_llc.writebacks],
            ],
            title="Dirty-handover path ablation (radix)",
        ),
    )
    # Routing dirty transfers through the LLC costs time and traffic.
    assert via_llc.execution_time >= direct.execution_time
    assert via_llc.writebacks > direct.writebacks
