"""Capacity soak for ``cohort fleet``: find the knee, hold the plateau.

The chaos soak (``benchmarks/chaos_soak.py``) proves the fleet
*survives*; this script proves it has *capacity*.  It runs a real
3-shard fleet (in-process router supervising ``cohort serve``
subprocesses over one shared cache) and drives it with the open-loop
Poisson generator (:mod:`repro.serve.loadgen`) in three phases:

1. **Warm-up** — every spec in the θ-population is executed once, so
   the plateau exercises the *warm* cache tier the way steady-state
   production traffic would (duplicate submissions, memo + disk hits).
2. **Ramp** — short open-loop windows at geometrically increasing
   arrival rates until the fleet saturates (sustained throughput falls
   behind the offered rate, or backpressure dominates).  The best
   sustained rate observed is the *knee*.
3. **Plateau** — a sustained hold just below the knee.  Queue-wait is
   measured from the *serve shards' own histograms* (before/after
   per-bucket deltas, so only plateau requests count), the warm hit
   rate from the fleet's aggregated cache counters, and routing
   balance from per-shard routed deltas.

The verdict lives in the shipped gate spec
(``repro/qa/specs/capacity.json``): this script only measures, writes
a ``kind="capacity"`` run manifest plus artefacts (fleet metrics
snapshot, Prometheus scrape, oplog, ``BENCH_serving.json`` trajectory,
verdict report) into the artifact directory, and exits with the gate's
verdict.  The checked-in ``benchmarks/out/BENCH_serving.json`` is the
regression baseline: the gate warns when sustained throughput falls
out of the band relative to it.

    PYTHONPATH=src python benchmarks/capacity_soak.py [artifact_dir]
"""

import json
import os
import shutil
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.obs import OpLogger, parse_prometheus_text  # noqa: E402
from repro.obs.metrics import LatencyHistogram  # noqa: E402
from repro.obs.validate import validate_file  # noqa: E402
from repro.qa import build_manifest, evaluate_spec, load_spec  # noqa: E402
from repro.qa import write_manifest  # noqa: E402
from repro.serve import FleetThread, ServeClient  # noqa: E402
from repro.serve.loadgen import LoadGenerator, theta_population  # noqa: E402

ART_DIR = sys.argv[1] if len(sys.argv) > 1 else "capacity-artifacts"
BASELINE_PATH = os.path.join(
    os.path.dirname(__file__), "out", "BENCH_serving.json"
)

SHARDS = 3
POPULATION = 24
RAMP_START_RPS = 8.0
RAMP_WINDOW_S = 3.0
RAMP_MAX_RUNGS = 6
#: A rung saturates when it completes less than this fraction of its
#: offered rate, or when backpressure passes RAMP_429_CEILING.
SATURATION_FRACTION = 0.8
RAMP_429_CEILING = 0.2
#: The plateau holds at this fraction of the measured knee.
PLATEAU_FRACTION = 0.8
PLATEAU_S = 12.0
DRAIN_TIMEOUT_S = 60.0
SETTLE_TIMEOUT_S = 120.0


def fail(message):
    """Harness machinery broke — not a gate verdict, just die."""
    print(f"capacity_soak: FAIL — {message}", file=sys.stderr)
    sys.exit(1)


def shard_queue_wait(doc):
    """One merged queue-wait histogram over every reachable shard."""
    merged = LatencyHistogram()
    for shard in doc.get("shards", []):
        serve = shard.get("serve") or {}
        hist = (serve.get("service") or {}).get("queue_wait_ms")
        if hist:
            merged.merge(LatencyHistogram.from_dict(hist))
    return merged


def hist_delta(before, after):
    """Per-bucket ``after - before``: the histogram of one window."""
    counts = dict(after.counts)
    for bucket, count in before.counts.items():
        counts[bucket] = counts.get(bucket, 0) - count
    counts = {b: c for b, c in counts.items() if c > 0}
    return LatencyHistogram(
        counts=counts,
        total=max(0, after.total - before.total),
        sum=max(0, after.sum - before.sum),
        max=after.max,
    )


def wait_fleet_idle(client, timeout=SETTLE_TIMEOUT_S):
    """Block until the fleet has no pending admissions left."""
    deadline = time.monotonic() + timeout
    doc = None
    while time.monotonic() < deadline:
        doc = client.metrics()
        if doc["fleet"]["admission_pending"] == 0:
            return doc
        time.sleep(0.25)
    fail(
        f"fleet still has {doc['fleet']['admission_pending']} pending "
        f"jobs after {timeout}s"
    )


def scrape_prometheus(host, port, out_path):
    import http.client

    conn = http.client.HTTPConnection(host, port, timeout=30)
    try:
        conn.request("GET", "/metrics?format=prometheus")
        response = conn.getresponse()
        body = response.read().decode()
    finally:
        conn.close()
    if response.status != 200:
        fail(f"prometheus scrape returned {response.status}")
    try:
        families = parse_prometheus_text(body)
    except ValueError as exc:
        fail(f"prometheus exposition does not parse: {exc}")
    with open(out_path, "w") as fh:
        fh.write(body)
    print(f"capacity_soak: prometheus scrape OK ({len(families)} families)")


def run_window(fleet, rate, duration, seed, population, workers=32):
    gen = LoadGenerator(
        fleet.host, fleet.port,
        rate=rate, duration=duration, population=population, seed=seed,
        workers=workers, drain_timeout=DRAIN_TIMEOUT_S,
    )
    return gen.run()


def load_baseline():
    """Sustained req/s of the checked-in trajectory (0.0 when absent)."""
    try:
        with open(BASELINE_PATH) as fh:
            return float(json.load(fh).get("sustained_rps", 0.0))
    except (OSError, ValueError):
        return 0.0


def main():
    if os.path.isdir(ART_DIR):
        shutil.rmtree(ART_DIR)
    os.makedirs(ART_DIR, exist_ok=True)
    fleet_dir = os.path.join(ART_DIR, "fleet")
    oplog_path = os.path.join(ART_DIR, "fleet.oplog.jsonl")
    population = theta_population(POPULATION)

    fleet = FleetThread(
        shards=SHARDS,
        fleet_dir=fleet_dir,
        cache_dir=os.path.join(fleet_dir, "cache"),
        batch_window=0.02,
        admission_limit=512,
        shard_queue_limit=128,
        oplog=OpLogger(path=oplog_path, component="fleet"),
    )
    fleet.start()
    try:
        client = ServeClient(fleet.base_url, timeout=30.0,
                             connect_retries=5)

        # Phase 1: warm-up — every population spec executed once.
        accepted = client.submit(
            [spec.to_dict() for spec in population], max_retries=20
        )
        if len(accepted) != len(population):
            fail(f"warm-up accepted {len(accepted)}/{len(population)}")
        client.wait([doc["id"] for doc in accepted], timeout=300.0)
        print(f"capacity_soak: warm-up done ({len(population)} specs)")

        # Phase 2: ramp to the knee.
        ramp = []
        knee_rps = 0.0
        rate = RAMP_START_RPS
        for rung in range(RAMP_MAX_RUNGS):
            report = run_window(
                fleet, rate, RAMP_WINDOW_S, seed=100 + rung,
                population=population,
            )
            doc = report.to_dict()
            ramp.append({
                "rate": rate,
                "offered_rps": doc["offered_rps"],
                "sustained_rps": doc["sustained_rps"],
                "ratio_429": doc["ratio_429"],
                "e2e_p99_ms": doc["e2e"]["p99_ms"],
                "launch_lag_p99_ms": doc["launch_lag"]["p99_ms"],
            })
            print(
                f"capacity_soak: ramp {rate:.0f} rps -> sustained "
                f"{doc['sustained_rps']:.1f} rps, 429 "
                f"{doc['ratio_429']:.2f}"
            )
            # Cap the rung's contribution at its *accepted* rate: a
            # shed-heavy rung completes its backlog during the drain
            # tail, which inflates sustained_rps past what the fleet
            # actually admitted per second — and a knee overestimated
            # that way makes the plateau over-offer and fail its own
            # backpressure ceiling.
            accepted_rps = (
                doc["accepted"] / doc["window_s"] if doc["window_s"] else 0.0
            )
            knee_rps = max(knee_rps, min(doc["sustained_rps"], accepted_rps))
            saturated = (
                doc["ratio_429"] > RAMP_429_CEILING
                or doc["sustained_rps"]
                < SATURATION_FRACTION * doc["offered_rps"]
            )
            if saturated:
                break
            rate *= 2
        if knee_rps <= 0:
            fail("ramp never sustained any throughput")
        wait_fleet_idle(client)

        # Phase 3: plateau just below the knee, measured by deltas so
        # only plateau-window requests count.
        plateau_rate = max(1.0, PLATEAU_FRACTION * knee_rps)
        before = client.metrics()
        plateau = run_window(
            fleet, plateau_rate, PLATEAU_S, seed=7,
            population=population, workers=48,
        )
        final = wait_fleet_idle(client)
        after = client.metrics()

        wait_hist = hist_delta(
            shard_queue_wait(before), shard_queue_wait(after)
        )
        hits = (
            after["fleet"]["cache"].get("hits", 0)
            - before["fleet"]["cache"].get("hits", 0)
        )
        misses = (
            after["fleet"]["cache"].get("misses", 0)
            - before["fleet"]["cache"].get("misses", 0)
        )
        routed = [
            a["routed"] - b["routed"]
            for a, b in zip(after["shards"], before["shards"])
        ]
        routed_total = sum(routed)
        shares = (
            [r / routed_total for r in routed] if routed_total else [0.0]
        )

        snapshot_path = os.path.join(ART_DIR, "fleet.metrics.json")
        with open(snapshot_path, "w") as fh:
            json.dump(after, fh, indent=2)
        scrape_prometheus(
            fleet.host, fleet.port,
            os.path.join(ART_DIR, "fleet.metrics.prom.txt"),
        )
    finally:
        fleet.stop()

    errors = validate_file(oplog_path)
    if errors:
        fail(f"fleet oplog failed schema validation: {errors[:3]}")

    plateau_doc = plateau.to_dict()
    metrics = {
        "shards": SHARDS,
        "population": POPULATION,
        "knee_rps": knee_rps,
        "plateau_rate_rps": plateau_rate,
        "plateau_offered": plateau_doc["offered"],
        "plateau_accepted": plateau_doc["accepted"],
        "offered_rps": plateau_doc["offered_rps"],
        "sustained_rps": plateau_doc["sustained_rps"],
        "completed_jobs": plateau_doc["completed"],
        "failed_jobs": plateau_doc["failed"],
        "lost_jobs": plateau_doc["lost"],
        "pending_at_end": plateau_doc["pending_at_end"],
        "rejected_429": plateau_doc["rejected_429"],
        "ratio_429": plateau_doc["ratio_429"],
        "errors": plateau_doc["errors"],
        "queue_wait_p50_ms": wait_hist.percentile(0.50),
        "queue_wait_p99_ms": wait_hist.percentile(0.99),
        "queue_wait_samples": wait_hist.total,
        "e2e_p50_ms": plateau_doc["e2e"]["p50_ms"],
        "e2e_p99_ms": plateau_doc["e2e"]["p99_ms"],
        "submit_p99_ms": plateau_doc["submit"]["p99_ms"],
        "launch_lag_p99_ms": plateau_doc["launch_lag"]["p99_ms"],
        "warm_hits": hits,
        "warm_misses": misses,
        "warm_hit_rate": hits / (hits + misses) if hits + misses else 0.0,
        "shard_share_min": min(shares),
        "shard_share_max": max(shares),
        "journal_live_final": final["fleet"]["journal_live"],
        "baseline_sustained_rps": load_baseline(),
    }
    print("capacity_soak: " + json.dumps(metrics, indent=2, sort_keys=True))

    bench_path = os.path.join(ART_DIR, "BENCH_serving.json")
    with open(bench_path, "w") as fh:
        json.dump(
            {
                "workload": (
                    f"capacity_soak fft theta-population x{POPULATION}, "
                    f"{SHARDS} shards"
                ),
                "shards": SHARDS,
                "population": POPULATION,
                "ramp": ramp,
                "knee_rps": knee_rps,
                "plateau": plateau_doc,
                "sustained_rps": plateau_doc["sustained_rps"],
                "queue_wait_p99_ms": metrics["queue_wait_p99_ms"],
                "warm_hit_rate": metrics["warm_hit_rate"],
            },
            fh, indent=2, sort_keys=True,
        )
        fh.write("\n")
    print(f"capacity_soak: wrote trajectory {bench_path}")

    manifest = build_manifest(
        "capacity",
        f"{SHARDS} shards, knee {knee_rps:.0f} rps, "
        f"plateau {plateau_rate:.0f} rps x {PLATEAU_S:.0f}s",
        metrics=metrics,
        artifact_paths=[snapshot_path, oplog_path, bench_path],
        environment={"shards": SHARDS, "population": POPULATION},
    )
    write_manifest(
        manifest, os.path.join(ART_DIR, "capacity.manifest.json")
    )
    report = evaluate_spec(load_spec("capacity"), manifest)
    with open(os.path.join(ART_DIR, "capacity.verdict.json"), "w") as fh:
        json.dump(report.to_dict(), fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(report.render())
    sys.exit(report.exit_code)


if __name__ == "__main__":
    main()
